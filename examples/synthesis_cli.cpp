// A small command-line synthesis driver — the adoption path for users
// with their own circuits:
//
//   synthesis_cli [input.aig|aag] [--priority pad|pda|baseline]
//                 [--temp K] [--lib cached.lib] [--out netlist.v]
//
// Reads a combinational AIGER file, synthesizes it with the chosen
// cost-priority list against a cryogenic library (characterized on
// demand and cached), signs off, writes a structural Verilog netlist,
// and prints the report. Run without arguments for a built-in demo
// (the EPFL-style 64-bit adder).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cells/characterize.hpp"
#include "core/flow.hpp"
#include "epfl/benchmarks.hpp"
#include "logic/aiger.hpp"
#include "map/verilog.hpp"
#include "sta/sta.hpp"

using namespace cryo;

namespace {

constexpr const char* kUsage =
    "usage: synthesis_cli [input.aig] [--priority pad|pda|baseline] "
    "[--temp K] [--lib cache.lib] [--out netlist.v]\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "synthesis_cli: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string out_path = "netlist.v";
  std::string lib_path;
  double temperature = 10.0;
  auto priority = opt::CostPriority::kPowerDelayArea;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--priority") {
      const std::string p = next();
      const auto parsed = opt::priority_from_string(p);
      if (!parsed) {
        usage_error("unknown priority '" + p +
                    "' (expected baseline | pad | pda)");
      }
      priority = *parsed;
    } else if (arg == "--temp") {
      const std::string raw = next();
      char* end = nullptr;
      temperature = std::strtod(raw.c_str(), &end);
      if (raw.empty() || end != raw.c_str() + raw.size() ||
          !(temperature > 0.0)) {
        usage_error("--temp needs a positive temperature in kelvin, got '" +
                    raw + "'");
      }
    } else if (arg == "--lib") {
      lib_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown option '" + arg + "'");
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      usage_error("unexpected extra operand '" + arg + "' (input already '" +
                  input_path + "')");
    }
  }

  try {
    logic::Aig design;
    if (input_path.empty()) {
      std::printf("no input given — running the built-in 64-bit adder demo\n");
      design = epfl::make_adder(64);
    } else {
      design = logic::read_aiger_file(input_path);
      design.set_name("user_design");
    }
    std::printf("design: %u PIs, %u POs, %u AND nodes, depth %u\n",
                design.num_pis(), design.num_pos(), design.num_ands(),
                design.depth());

    if (lib_path.empty()) {
      lib_path = "cryoeda_lib_" + std::to_string(static_cast<int>(temperature)) +
                 "K.lib";
    }
    std::printf("library: %s @ %.0f K (characterizing on first use...)\n",
                lib_path.c_str(), temperature);
    const auto library = cells::load_or_characterize(
        lib_path, cells::standard_catalog(), temperature);
    const map::CellMatcher matcher{library};

    core::FlowOptions flow;
    flow.priority = priority;
    std::printf("synthesizing with priority %s...\n",
                opt::to_string(priority).c_str());
    const auto result = core::synthesize(design, matcher, flow);
    const auto signoff = sta::analyze(result.netlist, {});

    std::printf("\nresults:\n");
    std::printf("  AIG          : %u -> %u -> %u AND nodes\n",
                result.initial_ands, result.after_c2rs,
                result.after_power_stage);
    std::printf("  netlist      : %zu gates, %.2f um^2\n",
                result.netlist.gate_count(), result.netlist.total_area());
    std::printf("  critical path: %.1f ps\n", signoff.critical_delay * 1e12);
    std::printf("  power @1GHz  : %.4g W (leakage %.4g, internal %.4g, "
                "switching %.4g)\n",
                signoff.power.total(), signoff.power.leakage,
                signoff.power.internal, signoff.power.switching);

    map::write_verilog(result.netlist, out_path);
    std::printf("  netlist written to %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "synthesis_cli: %s\n", e.what());
    return 1;
  }
}
