file(REMOVE_RECURSE
  "CMakeFiles/ablation_activity.dir/ablation_activity.cpp.o"
  "CMakeFiles/ablation_activity.dir/ablation_activity.cpp.o.d"
  "ablation_activity"
  "ablation_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
