file(REMOVE_RECURSE
  "libcryo_epfl.a"
)
