#pragma once

#include <vector>

#include "map/netlist.hpp"

namespace cryo::sta {

/// Signoff analysis options.
struct StaOptions {
  double input_slew = 10e-12;    ///< slew presented at the PIs [s]
  double output_load = 1e-15;    ///< load on each PO [F]
  double clock_period = 1e-9;    ///< [s]; activities are toggles/cycle
  double input_activity = 0.2;   ///< PI toggle rate
  /// Fanout-based wire-load model: every net adds `wire_cap_base` plus
  /// `wire_cap_per_fanout` per sink pin (a standard pre-layout estimate;
  /// set both to 0 for the lumped-pin-only model).
  double wire_cap_base = 0.0;
  double wire_cap_per_fanout = 0.0;
  unsigned sim_words = 16;
  std::uint64_t seed = 23;
  /// Clamp NLDM lookups to the characterized grid (guards against
  /// negative extrapolated delays/energies when slews/loads leave the
  /// 7x7 grid). Set false for the legacy linear extrapolation.
  bool clamp_tables = true;
};

/// Power report, PrimeTime-style categories (paper Fig. 2(c)):
/// leakage (static), internal (cell-internal switching from the liberty
/// tables), and net switching (load capacitance charging).
struct PowerReport {
  double leakage = 0.0;    ///< [W]
  double internal = 0.0;   ///< [W]
  double switching = 0.0;  ///< [W]
  double total() const { return leakage + internal + switching; }
};

/// Static timing + power analysis result.
struct StaResult {
  double critical_delay = 0.0;      ///< worst PO arrival [s]
  PowerReport power;
  std::vector<double> arrival;      ///< per net [s]
  std::vector<double> slew;         ///< per net [s]
  std::vector<double> activity;     ///< per net [toggles/cycle]
};

/// NLDM-based static timing analysis and power signoff of a mapped
/// netlist. Net loads are the sum of fanout pin capacitances (+ PO
/// loads); delays/slews/internal energies come from bilinear NLDM
/// lookups, worst-case over rise/fall. Throws std::invalid_argument on
/// non-positive clock_period/input_slew or a negative output_load.
StaResult analyze(const map::Netlist& netlist, const StaOptions& options = {});

}  // namespace cryo::sta
