
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/cryo_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/cryo_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/cryo_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/cryo_core.dir/flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/cryo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/cryo_map.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/cryo_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/epfl/CMakeFiles/cryo_epfl.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/cryo_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/cryo_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/cryo_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cryo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
