#pragma once

#include <optional>
#include <vector>

namespace cryo::spice {

/// Waveform post-processing used by cell characterization — the measures a
/// commercial characterization flow (SiliconSmart) extracts from SPICE
/// transients.

/// Time at which `values` first crosses `threshold` in the given direction
/// (linear interpolation between samples), searching from `t_from`.
std::optional<double> crossing_time(const std::vector<double>& times,
                                    const std::vector<double>& values,
                                    double threshold, bool rising,
                                    double t_from = 0.0);

/// Transition time between the lo_frac and hi_frac levels of a full swing
/// from v0 to v1 (e.g. 10 %–90 % slew). Returns nullopt if the waveform
/// never completes the transition.
std::optional<double> transition_time(const std::vector<double>& times,
                                      const std::vector<double>& values,
                                      double v0, double v1,
                                      double lo_frac = 0.1,
                                      double hi_frac = 0.9);

/// True if the waveform has settled within `tol` volts of `target` at its
/// final sample.
bool settled(const std::vector<double>& values, double target, double tol);

}  // namespace cryo::spice
