# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_liberty[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
include("/root/repo/build/tests/test_map[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_epfl[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
