// Ablation (DESIGN.md §5): the cost-priority tie-break threshold epsilon.
//
// The paper notes ABC breaks ties "within a threshold"; epsilon controls
// how often the secondary objectives get to decide. We sweep it for the
// proposed p->a->d priority on a subset of circuits and report the power
// saving against the epsilon-default baseline.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace cryo;

int main() {
  std::printf("=== Ablation: priority tie-break threshold epsilon ===\n\n");
  const auto lib = bench::corner_library(10.0);
  const map::CellMatcher matcher{lib};

  std::vector<epfl::Benchmark> subset;
  subset.push_back({"adder", true, epfl::make_adder()});
  subset.push_back({"multiplier", true, epfl::make_multiplier()});
  subset.push_back({"voter", false, epfl::make_voter()});
  subset.push_back({"priority", false, epfl::make_priority()});

  const std::vector<double> epsilons{0.0, 0.01, 0.02, 0.05, 0.10};

  // The (epsilon, circuit) grid points are independent experiments: run
  // them across the pool and emit the table rows in epsilon-major order.
  util::ScopedTimer timer{"ablation_epsilon grid"};
  const auto rows = util::parallel_map(
      epsilons.size() * subset.size(), [&](std::size_t k) {
        core::ExperimentOptions options;
        options.flow.epsilon = epsilons[k / subset.size()];
        // compare_circuit already fans its three scenarios out; grid
        // points nested inside a worker run those inline.
        return core::compare_circuit(subset[k % subset.size()], matcher,
                                     options);
      });

  util::Table table{{"epsilon", "circuit", "power saving", "delay overhead"}};
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& row = rows[k];
    table.add_row({util::Table::num(epsilons[k / subset.size()], 2),
                   subset[k % subset.size()].name,
                   util::Table::pct(row.power_saving_pad()),
                   util::Table::pct(row.delay_overhead_pad())});
  }
  table.write_csv(bench::csv_path("ablation_epsilon.csv"));
  std::printf("%s\n", table.render().c_str());
  bench::write_bench_report("ablation_epsilon");
  return 0;
}
