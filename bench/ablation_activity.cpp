// Ablation (DESIGN.md §5): the assumed primary-input activation rate.
//
// The power-aware flow simulates switching activity "assuming a certain
// activation rate for each primary input" (paper §IV-B). This sweep
// quantifies how sensitive the cryogenic-aware savings are to that
// assumption — both the rate used inside the cost functions and the rate
// used at signoff.

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace cryo;

int main() {
  std::printf("=== Ablation: primary-input activation rate ===\n\n");
  const auto lib = bench::corner_library(10.0);
  const map::CellMatcher matcher{lib};

  std::vector<epfl::Benchmark> subset;
  subset.push_back({"adder", true, epfl::make_adder()});
  subset.push_back({"max", true, epfl::make_max()});
  subset.push_back({"dec", false, epfl::make_dec()});
  subset.push_back({"router", false, epfl::make_router()});

  util::Table table{
      {"activity", "circuit", "base P [uW]", "power saving", "delay overhead"}};
  for (const double rate : {0.05, 0.1, 0.2, 0.35, 0.5}) {
    for (const auto& benchmark : subset) {
      core::ExperimentOptions options;
      options.flow.input_activity = rate;
      options.sta.input_activity = rate;
      const auto row = core::compare_circuit(benchmark, matcher, options);
      table.add_row({util::Table::num(rate, 2), benchmark.name,
                     util::Table::num(row.baseline.total_power * 1e6, 2),
                     util::Table::pct(row.power_saving_pad()),
                     util::Table::pct(row.delay_overhead_pad())});
    }
  }
  table.write_csv(bench::csv_path("ablation_activity.csv"));
  std::printf("%s\n", table.render().c_str());
  return 0;
}
