#include "sat/cnf.hpp"

#include <stdexcept>

namespace cryo::sat {

CnfMap encode_aig(const logic::Aig& aig, Solver& solver) {
  CnfMap map;
  map.node_var.resize(aig.num_nodes());
  for (logic::NodeIdx v = 0; v < aig.num_nodes(); ++v) {
    map.node_var[v] = solver.new_var();
  }
  // Constant node is false.
  solver.add_clause(mk_lit(map.node_var[0], true));
  for (logic::NodeIdx v = 0; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v)) {
      continue;
    }
    const Lit n = mk_lit(map.node_var[v]);
    const Lit a = map.lit(aig.fanin0(v));
    const Lit b = map.lit(aig.fanin1(v));
    // n <-> a & b
    solver.add_clause(lit_neg(n), a);
    solver.add_clause(lit_neg(n), b);
    solver.add_clause(n, lit_neg(a), lit_neg(b));
  }
  return map;
}

CecResult check_equivalence(const logic::Aig& a, const logic::Aig& b,
                            std::int64_t conflict_limit) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument{"check_equivalence: interface mismatch"};
  }
  Solver solver;
  const CnfMap ma = encode_aig(a, solver);
  const CnfMap mb = encode_aig(b, solver);
  // Tie the PIs together.
  for (logic::NodeIdx i = 0; i < a.num_pis(); ++i) {
    const Lit pa = ma.lit(a.pi(i));
    const Lit pb = mb.lit(b.pi(i));
    solver.add_clause(lit_neg(pa), pb);
    solver.add_clause(pa, lit_neg(pb));
  }
  // XOR of each PO pair; miter output = OR of XORs.
  std::vector<Lit> ors;
  for (logic::NodeIdx i = 0; i < a.num_pos(); ++i) {
    const Lit pa = ma.lit(a.po(i));
    const Lit pb = mb.lit(b.po(i));
    const Var x = solver.new_var();
    const Lit xl = mk_lit(x);
    // x <-> pa ^ pb
    solver.add_clause(lit_neg(xl), pa, pb);
    solver.add_clause(lit_neg(xl), lit_neg(pa), lit_neg(pb));
    solver.add_clause(xl, lit_neg(pa), pb);
    solver.add_clause(xl, pa, lit_neg(pb));
    ors.push_back(xl);
  }
  if (!solver.add_clause(std::move(ors))) {
    return {Status::kUnsat, {}};
  }

  CecResult result;
  result.status = solver.solve({}, conflict_limit);
  if (result.status == Status::kSat) {
    result.counterexample.resize(a.num_pis());
    for (logic::NodeIdx i = 0; i < a.num_pis(); ++i) {
      result.counterexample[i] = solver.model_value_lit(ma.lit(a.pi(i)));
    }
  }
  return result;
}

}  // namespace cryo::sat
