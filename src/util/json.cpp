#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cryo::util {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error{"Json: " + what};
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null keeps the document valid and is an
    // unmistakable "this metric is broken" marker.
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
  // Keep a double distinguishable from an int after a round-trip.
  if (out.find_first_of(".eE", out.size() - (res.ptr - buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) {
    fail("not a bool");
  }
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kInt) {
    fail("not an integer");
  }
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::kInt) {
    return static_cast<double>(int_);
  }
  if (type_ != Type::kDouble) {
    fail("not a number");
  }
  return double_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    fail("not a string");
  }
  return string_;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) {
    type_ = Type::kArray;
  }
  if (type_ != Type::kArray) {
    fail("push_back on a non-array");
  }
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  if (type_ == Type::kObject) {
    return object_.size();
  }
  fail("size of a non-container");
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray || index >= array_.size()) {
    fail("array index out of range");
  }
  return array_[index];
}

const std::vector<Json>& Json::elements() const {
  if (type_ != Type::kArray) {
    fail("not an array");
  }
  return array_;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  if (type_ != Type::kObject) {
    fail("operator[] on a non-object");
  }
  for (auto& [k, v] : object_) {
    if (k == key) {
      return v;
    }
  }
  object_.emplace_back(key, Json{});
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    fail("missing key \"" + key + "\"");
  }
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) {
    fail("not an object");
  }
  return object_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline(depth);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // An int and a double never compare equal: reports only emit doubles
    // for values that were recorded as doubles.
    return false;
  }
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

// ------------------------------------------------------------ parser ----

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_{text} {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      error("trailing garbage");
    }
    return value;
  }

private:
  [[noreturn]] void error(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      error("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      error(std::string{"expected '"} + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string_view{lit}.size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (consume_literal("true")) {
          return Json{true};
        }
        error("bad literal");
      case 'f':
        if (consume_literal("false")) {
          return Json{false};
        }
        error("bad literal");
      case 'n':
        if (consume_literal("null")) {
          return Json{};
        }
        error("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      if (peek() != '"') {
        error("expected object key");
      }
      std::string key = parse_string();
      expect(':');
      obj[key] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return obj;
      }
      if (c != ',') {
        error("expected ',' or '}'");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return arr;
      }
      if (c != ',') {
        error("expected ',' or ']'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            error("bad \\u escape");
          }
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ptr != text_.data() + pos_ + 4) {
            error("bad \\u escape");
          }
          pos_ += 4;
          // Reports only escape control characters (< 0x80); decode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: error("bad escape");
      }
    }
    error("unterminated string");
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      error("expected a value");
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_double) {
      std::int64_t v = 0;
      const auto res = std::from_chars(first, last, v);
      if (res.ec == std::errc{} && res.ptr == last) {
        return Json{v};
      }
      // Out-of-range integer: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(first, last, d);
    if (res.ec != std::errc{} || res.ptr != last) {
      error("bad number");
    }
    return Json{d};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser{text}.run(); }

}  // namespace cryo::util
