#pragma once

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "epfl/benchmarks.hpp"

namespace cryo::core {

/// Signoff figures of one synthesis scenario on one circuit.
struct ScenarioResult {
  opt::CostPriority priority{};
  double total_power = 0.0;  ///< [W], at the normalized clock
  sta::PowerReport power;
  double delay = 0.0;        ///< critical path [s]
  double area = 0.0;         ///< [um^2]
  std::size_t gates = 0;
};

/// Paper Fig. 3 rows: baseline vs the two proposed priority lists.
struct CircuitComparison {
  std::string circuit;
  ScenarioResult baseline;
  ScenarioResult pad;  ///< power -> area -> delay
  ScenarioResult pda;  ///< power -> delay -> area
  double clock_period = 0.0;  ///< normalized clock (slowest variant)

  double power_saving_pad() const;  ///< positive = proposed saves power
  double power_saving_pda() const;
  double delay_overhead_pad() const;  ///< positive = proposed is slower
  double delay_overhead_pda() const;
};

/// Options of the comparison experiment.
struct ExperimentOptions {
  FlowOptions flow;                  ///< shared flow knobs
  sta::StaOptions sta;               ///< signoff corner
  bool verbose = false;
  /// Workers for the per-benchmark synthesis+STA fleet: 0 = the
  /// CRYOEDA_THREADS env var, falling back to hardware concurrency;
  /// 1 = serial. Results are written by suite index, so they are
  /// identical for any thread count.
  int threads = 0;
};

/// Run the three scenarios of paper §V-B on one circuit, normalizing the
/// power clock to the slowest variant (footnote 1 of the paper).
CircuitComparison compare_circuit(const epfl::Benchmark& benchmark,
                                  const map::CellMatcher& matcher,
                                  const ExperimentOptions& options);

/// Run the full suite; returns one comparison row per circuit.
std::vector<CircuitComparison> run_synthesis_comparison(
    const std::vector<epfl::Benchmark>& suite, const map::CellMatcher& matcher,
    const ExperimentOptions& options);

}  // namespace cryo::core
