#pragma once

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "epfl/benchmarks.hpp"

namespace cryo::core {

/// One synthesis scenario, as data: a row label, the priority it
/// reports under, and the recipe string the pipeline executes. The
/// paper's §V-B rows are three of these differing only in `-p`.
struct ScenarioSpec {
  std::string name;              ///< row label: "baseline" | "pad" | "pda"
  opt::CostPriority priority{};  ///< reporting/normalization tag
  std::string recipe;            ///< pass script (core/pipeline.hpp)
};

/// The Fig. 3 scenario set for the given shared flow knobs: the
/// canonical recipe instantiated for baseline, p->a->d, and p->d->a.
std::vector<ScenarioSpec> fig3_scenarios(const FlowOptions& flow);

/// Signoff figures of one synthesis scenario on one circuit.
struct ScenarioResult {
  std::string scenario;      ///< row label (ScenarioSpec::name)
  std::string recipe;        ///< recipe that produced the figures
  opt::CostPriority priority{};
  double total_power = 0.0;  ///< [W], at the normalized clock
  sta::PowerReport power;
  double delay = 0.0;        ///< critical path [s]
  double area = 0.0;         ///< [um^2]
  std::size_t gates = 0;
  /// Fault isolation: a scenario whose synthesis threw records the
  /// failure here instead of sinking its sibling scenarios; its figures
  /// above stay zero and are excluded from normalization and gauges.
  bool ok = true;
  std::string error;       ///< what() of the failure (empty when ok)
  std::string error_kind;  ///< cryo::ErrorKind name, or "internal"
  /// True when the synthesis ran under an exhausted budget (passes
  /// skipped / stopped early / reverted). Degraded figures are never
  /// cached, and the recipe-search driver excludes them from "best".
  bool degraded = false;
};

/// Paper Fig. 3 rows: baseline vs the two proposed priority lists.
struct CircuitComparison {
  std::string circuit;
  ScenarioResult baseline;
  ScenarioResult pad;  ///< power -> area -> delay
  ScenarioResult pda;  ///< power -> delay -> area
  double clock_period = 0.0;  ///< normalized clock (slowest OK variant)

  /// All three scenarios produced valid figures.
  bool ok() const { return baseline.ok && pad.ok && pda.ok; }

  /// Savings/overheads are 0 when either side failed (or the baseline
  /// figure is non-positive), so a faulted row renders as "no change"
  /// rather than NaN/inf.
  double power_saving_pad() const;  ///< positive = proposed saves power
  double power_saving_pda() const;
  double delay_overhead_pad() const;  ///< positive = proposed is slower
  double delay_overhead_pda() const;
};

/// Options of the comparison experiment.
struct ExperimentOptions {
  FlowOptions flow;                  ///< shared flow knobs
  sta::StaOptions sta;               ///< signoff corner
  bool verbose = false;
  /// Workers for the per-benchmark synthesis+STA fleet: 0 = the
  /// CRYOEDA_THREADS env var, falling back to hardware concurrency;
  /// 1 = serial. Results are written by suite index, so they are
  /// identical for any thread count.
  int threads = 0;
};

/// Reject unusable experiment knobs (delegates to the FlowOptions
/// validator; additionally rejects a negative thread count and
/// non-positive signoff clock/slew). Called by the experiment drivers
/// on entry.
void validate(const ExperimentOptions& options);

/// Synthesize + signoff one (circuit, recipe) scenario, memoized in the
/// `core.scenario` artifact-cache stage (degraded runs are never
/// stored). `budget`, when non-null, bounds this scenario alone — the
/// recipe-search driver gives every variant its own wall-clock budget;
/// null uses `util::Budget::global()`. Throws on failure (RecipeError,
/// cryo::Error, ...); fleet callers wrap it for fault isolation.
/// `registry`, when non-null, resolves pass names instead of the builtin
/// registry; recipes touching any non-builtin pass bypass the scenario
/// cache (their bodies are not keyable process-image state).
ScenarioResult run_scenario(const logic::Aig& aig,
                            const map::CellMatcher& matcher,
                            const ExperimentOptions& options,
                            const ScenarioSpec& spec,
                            util::Budget* budget = nullptr,
                            const PassRegistry* registry = nullptr);

/// Run the three scenarios of paper §V-B on one circuit, normalizing the
/// power clock to the slowest variant (footnote 1 of the paper).
CircuitComparison compare_circuit(const epfl::Benchmark& benchmark,
                                  const map::CellMatcher& matcher,
                                  const ExperimentOptions& options);

/// Run the full suite; returns one comparison row per circuit.
std::vector<CircuitComparison> run_synthesis_comparison(
    const std::vector<epfl::Benchmark>& suite, const map::CellMatcher& matcher,
    const ExperimentOptions& options);

}  // namespace cryo::core
