#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace cryo::service {

/// An ordered asynchronous job queue on top of `util::ThreadPool`: jobs
/// are executed concurrently by the pool, but their replies are released
/// strictly in submission order, so the NDJSON protocol stays positional
/// (reply N answers request N) regardless of scheduling. Job callables
/// must not throw — the server wraps every job in its own fault
/// isolation and returns a structured error reply instead.
class JobQueue {
public:
  /// `threads` = 0 resolves via util::resolve_threads (CRYOEDA_THREADS).
  explicit JobQueue(int threads);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  int threads() const { return pool_.size(); }

  /// Enqueue an asynchronous job; its reply is released after every
  /// earlier submission's reply.
  void submit(std::function<util::Json()> job);

  /// Enqueue an already-computed reply (ops, parse errors) — it still
  /// waits its turn behind earlier pending jobs.
  void submit_ready(util::Json reply);

  /// Pop the longest finished prefix without blocking.
  std::vector<util::Json> drain_ready();

  /// Block until every submitted job finished; pop all replies. This is
  /// also the `load_plugin` / `shutdown` barrier: after it returns, no
  /// job is in flight and the caller may mutate shared state.
  std::vector<util::Json> drain_all();

private:
  struct Slot {
    bool ready = false;
    util::Json reply;
  };

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Slot>> slots_;
  util::ThreadPool pool_;
};

}  // namespace cryo::service
