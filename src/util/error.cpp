#include "util/error.hpp"

namespace cryo {

std::string_view error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kRecipe:
      return "recipe";
    case ErrorKind::kIo:
      return "io";
    case ErrorKind::kBudget:
      return "budget";
    case ErrorKind::kNumeric:
      return "numeric";
    case ErrorKind::kInternal:
      break;
  }
  return "internal";
}

int error_exit_code(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kRecipe:
      return 2;
    case ErrorKind::kIo:
      return 3;
    case ErrorKind::kBudget:
      return 4;
    case ErrorKind::kNumeric:
      return 5;
    case ErrorKind::kInternal:
      break;
  }
  return 1;
}

}  // namespace cryo
