#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

namespace cryo::util {

/// Lightweight wall-clock phase timer: logs "[time] <label>: <x> s" to
/// stderr on destruction (when logging is enabled). Used by the bench
/// drivers to attribute wall time to the characterization / synthesis /
/// signoff phases so parallel speedups are measurable.
class ScopedTimer {
public:
  explicit ScopedTimer(std::string label, bool log = true)
      : label_{std::move(label)},
        log_{log},
        start_{std::chrono::steady_clock::now()} {}

  ~ScopedTimer() {
    if (log_) {
      std::fprintf(stderr, "[time] %s: %.3f s\n", label_.c_str(),
                   elapsed_s());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction.
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

private:
  std::string label_;
  bool log_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cryo::util
