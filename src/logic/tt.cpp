#include "logic/tt.hpp"

#include <bit>
#include <stdexcept>

namespace cryo::logic {

bool tt6_has_var(std::uint64_t tt, unsigned n, unsigned v) {
  const std::uint64_t mask = tt6_mask(n);
  return ((tt6_cofactor0(tt, v) ^ tt6_cofactor1(tt, v)) & mask) != 0;
}

std::uint64_t tt6_cofactor0(std::uint64_t tt, unsigned v) {
  const std::uint64_t lo = tt & ~kVarTt6[v];
  return lo | (lo << (1u << v));
}

std::uint64_t tt6_cofactor1(std::uint64_t tt, unsigned v) {
  const std::uint64_t hi = tt & kVarTt6[v];
  return hi | (hi >> (1u << v));
}

std::uint64_t tt6_shrink(std::uint64_t tt, unsigned n,
                         std::vector<unsigned>& support) {
  support.clear();
  for (unsigned v = 0; v < n; ++v) {
    if (tt6_has_var(tt, n, v)) {
      support.push_back(v);
    }
  }
  const unsigned j = static_cast<unsigned>(support.size());
  std::uint64_t out = 0;
  for (unsigned m = 0; m < (1u << j); ++m) {
    unsigned orig = 0;
    for (unsigned i = 0; i < j; ++i) {
      if ((m >> i) & 1u) {
        orig |= 1u << support[i];
      }
    }
    if (tt6_bit(tt, orig)) {
      out |= 1ull << m;
    }
  }
  return out;
}

std::uint64_t tt6_transform(std::uint64_t tt, unsigned n,
                            const std::vector<unsigned>& perm,
                            unsigned input_phase_mask, bool out_negate) {
  std::uint64_t out = 0;
  for (unsigned m = 0; m < (1u << n); ++m) {
    unsigned z = 0;
    for (unsigned i = 0; i < n; ++i) {
      const unsigned x = (m >> perm[i]) & 1u;
      z |= (x ^ ((input_phase_mask >> i) & 1u)) << i;
    }
    bool bit = tt6_bit(tt, z);
    if (out_negate) {
      bit = !bit;
    }
    if (bit) {
      out |= 1ull << m;
    }
  }
  return out;
}

unsigned tt6_count_ones(std::uint64_t tt, unsigned n) {
  return static_cast<unsigned>(std::popcount(tt & tt6_mask(n)));
}

// --------------------------------------------------------------- TtVec ---

TtVec::TtVec(unsigned num_vars) : num_vars_{num_vars} {
  if (num_vars > 16) {
    throw std::invalid_argument{"TtVec: at most 16 variables"};
  }
  words_.assign(num_vars <= 6 ? 1 : (1u << (num_vars - 6)), 0);
}

void TtVec::set_bit(std::uint32_t minterm, bool value) {
  if (value) {
    words_[minterm >> 6] |= 1ull << (minterm & 63u);
  } else {
    words_[minterm >> 6] &= ~(1ull << (minterm & 63u));
  }
}

void TtVec::mask_top() {
  if (num_vars_ < 6) {
    words_[0] &= tt6_mask(num_vars_);
  }
}

bool TtVec::is_zero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

bool TtVec::is_ones() const {
  if (num_vars_ < 6) {
    return words_[0] == tt6_mask(num_vars_);
  }
  for (std::uint64_t w : words_) {
    if (w != ~0ull) {
      return false;
    }
  }
  return true;
}

TtVec TtVec::operator&(const TtVec& o) const {
  TtVec out{num_vars_};
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & o.words_[i];
  }
  return out;
}

TtVec TtVec::operator|(const TtVec& o) const {
  TtVec out{num_vars_};
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] | o.words_[i];
  }
  return out;
}

TtVec TtVec::operator^(const TtVec& o) const {
  TtVec out{num_vars_};
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] ^ o.words_[i];
  }
  return out;
}

TtVec TtVec::operator~() const {
  TtVec out{num_vars_};
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = ~words_[i];
  }
  out.mask_top();
  return out;
}

TtVec TtVec::cofactor(unsigned var, bool value) const {
  TtVec out = *this;
  if (var < 6) {
    const std::uint64_t mask = kVarTt6[var];
    const unsigned shift = 1u << var;
    for (auto& w : out.words_) {
      if (value) {
        const std::uint64_t hi = w & mask;
        w = hi | (hi >> shift);
      } else {
        const std::uint64_t lo = w & ~mask;
        w = lo | (lo << shift);
      }
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t base = 0; base < out.words_.size(); base += 2 * block) {
      for (std::size_t i = 0; i < block; ++i) {
        const std::uint64_t chosen =
            value ? words_[base + block + i] : words_[base + i];
        out.words_[base + i] = chosen;
        out.words_[base + block + i] = chosen;
      }
    }
  }
  return out;
}

bool TtVec::has_var(unsigned var) const {
  return !(cofactor(var, false) ^ cofactor(var, true)).is_zero();
}

TtVec TtVec::zeros(unsigned num_vars) { return TtVec{num_vars}; }

TtVec TtVec::ones(unsigned num_vars) {
  TtVec out{num_vars};
  for (auto& w : out.words_) {
    w = ~0ull;
  }
  out.mask_top();
  return out;
}

TtVec TtVec::variable(unsigned num_vars, unsigned var) {
  TtVec out{num_vars};
  if (var < 6) {
    for (auto& w : out.words_) {
      w = kVarTt6[var];
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t base = 0; base < out.words_.size(); base += 2 * block) {
      for (std::size_t i = 0; i < block; ++i) {
        out.words_[base + block + i] = ~0ull;
      }
    }
  }
  out.mask_top();
  return out;
}

TtVec TtVec::from_tt6(std::uint64_t tt, unsigned num_vars) {
  if (num_vars > 6) {
    throw std::invalid_argument{"TtVec::from_tt6: too many variables"};
  }
  TtVec out{num_vars};
  out.words_[0] = tt & tt6_mask(num_vars);
  return out;
}

std::uint64_t TtVec::to_tt6() const {
  if (num_vars_ > 6) {
    throw std::logic_error{"TtVec::to_tt6: table too large"};
  }
  return words_[0] & tt6_mask(num_vars_);
}

// ---------------------------------------------------------------- ISOP ---

unsigned Cube::num_literals() const {
  return static_cast<unsigned>(std::popcount(pos) + std::popcount(neg));
}

namespace {

/// Minato–Morreale ISOP: find cubes F with lower <= F <= upper.
std::vector<Cube> isop_rec(const TtVec& lower, const TtVec& upper,
                           unsigned top_var, TtVec* cover_tt) {
  if (lower.is_zero()) {
    *cover_tt = TtVec::zeros(lower.num_vars());
    return {};
  }
  if (upper.is_ones()) {
    *cover_tt = TtVec::ones(lower.num_vars());
    return {Cube{}};
  }
  // Find the highest variable either table depends on.
  unsigned v = top_var;
  while (v > 0) {
    if (lower.has_var(v - 1) || upper.has_var(v - 1)) {
      break;
    }
    --v;
  }
  if (v == 0) {
    // No support left but lower != 0 and upper != 1 — inconsistent input.
    throw std::logic_error{"isop: lower not contained in upper"};
  }
  const unsigned var = v - 1;

  const TtVec l0 = lower.cofactor(var, false);
  const TtVec l1 = lower.cofactor(var, true);
  const TtVec u0 = upper.cofactor(var, false);
  const TtVec u1 = upper.cofactor(var, true);

  TtVec tt0{lower.num_vars()};
  TtVec tt1{lower.num_vars()};
  TtVec tt2{lower.num_vars()};

  std::vector<Cube> res0 = isop_rec(l0 & ~u1, u0, var, &tt0);
  std::vector<Cube> res1 = isop_rec(l1 & ~u0, u1, var, &tt1);
  const TtVec lnew = (l0 & ~tt0) | (l1 & ~tt1);
  std::vector<Cube> res2 = isop_rec(lnew, u0 & u1, var, &tt2);

  std::vector<Cube> result;
  result.reserve(res0.size() + res1.size() + res2.size());
  for (Cube c : res0) {
    c.neg |= 1u << var;
    result.push_back(c);
  }
  for (Cube c : res1) {
    c.pos |= 1u << var;
    result.push_back(c);
  }
  for (const Cube& c : res2) {
    result.push_back(c);
  }

  const TtVec vtt = TtVec::variable(lower.num_vars(), var);
  *cover_tt = (tt0 & ~vtt) | (tt1 & vtt) | tt2;
  return result;
}

}  // namespace

std::vector<Cube> isop(const TtVec& on_set, const TtVec& dc_set) {
  TtVec cover{on_set.num_vars()};
  return isop_rec(on_set, on_set | dc_set, on_set.num_vars(), &cover);
}

TtVec sop_to_tt(const std::vector<Cube>& cubes, unsigned num_vars) {
  TtVec out{num_vars};
  for (const Cube& cube : cubes) {
    TtVec term = TtVec::ones(num_vars);
    for (unsigned v = 0; v < num_vars; ++v) {
      if ((cube.pos >> v) & 1u) {
        term = term & TtVec::variable(num_vars, v);
      } else if ((cube.neg >> v) & 1u) {
        term = term & ~TtVec::variable(num_vars, v);
      }
    }
    out = out | term;
  }
  return out;
}

}  // namespace cryo::logic
