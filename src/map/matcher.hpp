#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "liberty/library.hpp"

namespace cryo::map {

/// One way to realize a target function with a library cell.
struct Match {
  const liberty::Cell* cell = nullptr;
  std::vector<unsigned> perm;  ///< cell input i connects to target var perm[i]
  unsigned input_phase = 0;    ///< bit i set: invert cell input i
  bool out_invert = false;     ///< cell output must be inverted
};

/// Cut-function to standard-cell matcher.
///
/// At construction, every combinational library cell's function is
/// expanded under all input permutations, input phases, and output
/// phases (full NPN orbit); the resulting truth tables are hashed. A cut
/// is then matched by a single hash lookup of its (support-minimized)
/// truth table — no per-cut canonicalization needed.
class CellMatcher {
public:
  explicit CellMatcher(const liberty::Library& library,
                       unsigned max_inputs = 5,
                       unsigned max_matches_per_key = 12);

  /// Matches for a function over exactly `n` (support) variables.
  const std::vector<Match>* find(std::uint64_t tt, unsigned n) const;

  /// Cheapest inverter / buffer in the library.
  const liberty::Cell* inverter() const { return inverter_; }
  const liberty::Cell* buffer() const { return buffer_; }
  const liberty::Cell* tie(bool high) const {
    return high ? tiehi_ : tielo_;
  }

  const liberty::Library& library() const { return *library_; }

  /// Construction knobs (they bound which matches exist, so synthesis
  /// cache keys must include them alongside the library fingerprint).
  unsigned max_inputs() const { return max_inputs_; }
  unsigned max_matches_per_key() const { return max_matches_per_key_; }

private:
  const liberty::Library* library_;
  unsigned max_inputs_ = 5;
  unsigned max_matches_per_key_ = 12;
  /// One exact-match table per input count (0..6) — no canonicalization,
  /// no collisions.
  std::array<std::unordered_map<std::uint64_t, std::vector<Match>>, 7> tables_;
  const liberty::Cell* inverter_ = nullptr;
  const liberty::Cell* buffer_ = nullptr;
  const liberty::Cell* tiehi_ = nullptr;
  const liberty::Cell* tielo_ = nullptr;
};

}  // namespace cryo::map
