#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "device/calibration.hpp"
#include "device/finfet.hpp"
#include "liberty/library.hpp"
#include "spice/backend.hpp"
#include "spice/measure.hpp"
#include "spice/ngspice_backend.hpp"
#include "spice/pwl.hpp"
#include "spice/simulator.hpp"
#include "util/artifact_cache.hpp"
#include "util/error.hpp"

#ifndef CRYO_TEST_DATA_DIR
#define CRYO_TEST_DATA_DIR "tests/data"
#endif

namespace {

namespace fs = std::filesystem;

using namespace cryo::spice;
using cryo::Error;
using cryo::ErrorKind;
using cryo::device::nominal_nfet_5nm;
using cryo::device::nominal_pfet_5nm;

/// The fig. 3-style test vehicle: a loaded inverter at Vdd = 0.7 V with
/// a rising input ramp — exercises both device polarities, the source
/// stamp, and the capacitor integrator of any engine.
Circuit loaded_inverter() {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add_fet(nominal_nfet_5nm(), in, out, kGround, 2);
  ckt.add_fet(nominal_pfet_5nm(), in, out, vdd, 3);
  ckt.add_cap(out, kGround, 1e-15);
  ckt.set_source(vdd, Pwl::constant(0.7));
  ckt.set_source(in, Pwl::ramp(0.0, 0.7, 20e-12, 10e-12));
  return ckt;
}

// ---------------------------------------------------------------------
// registry / resolution
// ---------------------------------------------------------------------

TEST(BackendRegistry, NamesAndLookup) {
  const auto names = backend_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "builtin");
  EXPECT_EQ(names[1], "ngspice");
  for (const auto& name : names) {
    const Backend* backend = find_backend(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
  }
  EXPECT_EQ(find_backend("spectre"), nullptr);
}

TEST(BackendRegistry, BuiltinIsAlwaysAvailable) {
  const Backend& builtin = builtin_backend();
  EXPECT_TRUE(builtin.available());
  EXPECT_EQ(builtin.unavailable_reason(), "");
  EXPECT_EQ(builtin.identity(), "builtin/1");
}

/// The device layer sits below spice and mirrors the builtin identity
/// as a constant for its cache keys; the two must never drift.
TEST(BackendRegistry, DeviceLayerMirrorsBuiltinIdentity) {
  EXPECT_EQ(cryo::device::kBuiltinBackendIdentity,
            builtin_backend().identity());
}

TEST(BackendResolve, ExplicitNameBeatsEnvironment) {
  ::setenv(kBackendEnv, "no-such-engine", 1);
  EXPECT_EQ(resolve_backend("builtin").name(), "builtin");
  ::unsetenv(kBackendEnv);
}

TEST(BackendResolve, EnvironmentThenBuiltinDefault) {
  ::unsetenv(kBackendEnv);
  EXPECT_EQ(resolve_backend("").name(), "builtin");
  ::setenv(kBackendEnv, "builtin", 1);
  EXPECT_EQ(resolve_backend("").name(), "builtin");
  ::unsetenv(kBackendEnv);
}

TEST(BackendResolve, UnknownNameIsARecipeError) {
  try {
    resolve_backend("spectre");
    FAIL() << "expected cryo::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kRecipe);
    EXPECT_NE(std::string{e.what()}.find("spectre"), std::string::npos);
  }
  ::setenv(kBackendEnv, "spectre", 1);
  EXPECT_THROW(resolve_backend(""), Error);
  ::unsetenv(kBackendEnv);
}

TEST(BackendResolve, UnavailableBackendNamesItsReason) {
  const Backend* ngspice = find_backend("ngspice");
  ASSERT_NE(ngspice, nullptr);
  if (ngspice->available()) {
    GTEST_SKIP() << "ngspice installed; unavailability path not testable";
  }
  try {
    resolve_backend("ngspice");
    FAIL() << "expected cryo::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kRecipe);
    EXPECT_NE(std::string{e.what()}.find("not found"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// builtin backend: bit identity with the direct Simulator path
// ---------------------------------------------------------------------

TEST(BuiltinBackend, TransientIsBitIdenticalToSimulator) {
  const Circuit ckt = loaded_inverter();
  TransientOptions options;
  options.t_stop = 200e-12;
  options.steps = 400;
  const std::vector<NodeId> probes{ckt.node("in"), ckt.node("out")};

  Simulator sim{ckt, 300.0};
  const TransientResult direct = sim.transient(options, probes);
  const TransientResult via =
      builtin_backend().transient(ckt, 300.0, options, probes);

  ASSERT_EQ(via.times.size(), direct.times.size());
  for (std::size_t i = 0; i < direct.times.size(); ++i) {
    EXPECT_EQ(via.times[i], direct.times[i]);
  }
  ASSERT_EQ(via.traces.size(), direct.traces.size());
  for (std::size_t t = 0; t < direct.traces.size(); ++t) {
    ASSERT_EQ(via.traces[t].values.size(), direct.traces[t].values.size());
    for (std::size_t i = 0; i < direct.traces[t].values.size(); ++i) {
      EXPECT_EQ(via.traces[t].values[i], direct.traces[t].values[i]);
    }
  }
  EXPECT_EQ(via.source_energy, direct.source_energy);
  EXPECT_EQ(via.source_charge, direct.source_charge);
}

TEST(BuiltinBackend, DcMatchesSimulatorWithPerSourceCurrents) {
  Circuit ckt = loaded_inverter();
  ckt.set_source(ckt.node("in"), Pwl::constant(0.0));
  Simulator sim{ckt, 300.0};
  const auto voltages = sim.dc();
  const DcResult op = builtin_backend().dc(ckt, 300.0);
  ASSERT_EQ(op.voltages.size(), voltages.size());
  for (std::size_t i = 0; i < voltages.size(); ++i) {
    EXPECT_EQ(op.voltages[i], voltages[i]);
  }
  EXPECT_EQ(op.source_current(ckt.node("vdd")),
            sim.source_current(voltages, ckt.node("vdd")));
  EXPECT_EQ(op.source_current(ckt.node("in")),
            sim.source_current(voltages, ckt.node("in")));
}

// ---------------------------------------------------------------------
// conformance: every registered backend agrees on the physics
// ---------------------------------------------------------------------

class BackendConformance : public ::testing::TestWithParam<std::string> {
protected:
  const Backend& backend() {
    const Backend* b = find_backend(GetParam());
    EXPECT_NE(b, nullptr);
    return *b;
  }
};

TEST_P(BackendConformance, InverterDcRails) {
  const Backend& b = backend();
  if (!b.available()) {
    GTEST_SKIP() << "skipped: " << b.unavailable_reason();
  }
  Circuit ckt = loaded_inverter();
  ckt.set_source(ckt.node("in"), Pwl::constant(0.0));
  const DcResult low = b.dc(ckt, 300.0);
  EXPECT_NEAR(low.voltages[ckt.node("out")], 0.7, 5e-3);
  ckt.set_source(ckt.node("in"), Pwl::constant(0.7));
  const DcResult high = b.dc(ckt, 300.0);
  EXPECT_NEAR(high.voltages[ckt.node("out")], 0.0, 5e-3);
  // The supply delivers (leakage-scale) current out of the rail.
  EXPECT_GE(high.source_current(ckt.node("vdd")), 0.0);
}

TEST_P(BackendConformance, InverterTransientSwingsAndDissipates) {
  const Backend& b = backend();
  if (!b.available()) {
    GTEST_SKIP() << "skipped: " << b.unavailable_reason();
  }
  const Circuit ckt = loaded_inverter();
  TransientOptions options;
  options.t_stop = 200e-12;
  options.steps = 400;
  const TransientResult res =
      b.transient(ckt, 300.0, options, {ckt.node("in"), ckt.node("out")});
  ASSERT_EQ(res.times.size(), static_cast<std::size_t>(options.steps) + 1);
  const auto& out = res.trace(ckt.node("out")).values;
  EXPECT_NEAR(out.front(), 0.7, 0.02);  // starts at the DC point
  EXPECT_NEAR(out.back(), 0.0, 0.02);   // fully discharged
  const auto t_in =
      crossing_time(res.times, res.trace(ckt.node("in")).values, 0.35, true);
  const auto t_out = crossing_time(res.times, out, 0.35, false);
  ASSERT_TRUE(t_in.has_value());
  ASSERT_TRUE(t_out.has_value());
  EXPECT_GT(*t_out - *t_in, 0.0);
  EXPECT_LT(*t_out - *t_in, 50e-12);
  // The rail must deliver positive switching energy.
  EXPECT_GT(res.source_energy.at(ckt.node("vdd")), 0.0);
}

/// Cross-engine agreement: every *available* backend must reproduce the
/// builtin's delay figure to compact-model accuracy (the deck embeds the
/// same EKV physics, so the engines differ only in solver details).
TEST_P(BackendConformance, DelayAgreesWithBuiltin) {
  const Backend& b = backend();
  if (!b.available()) {
    GTEST_SKIP() << "skipped: " << b.unavailable_reason();
  }
  const Circuit ckt = loaded_inverter();
  TransientOptions options;
  options.t_stop = 200e-12;
  options.steps = 400;
  const std::vector<NodeId> probes{ckt.node("in"), ckt.node("out")};
  auto delay_of = [&](const TransientResult& res) {
    const auto t_in =
        crossing_time(res.times, res.trace(ckt.node("in")).values, 0.35,
                      true);
    const auto t_out =
        crossing_time(res.times, res.trace(ckt.node("out")).values, 0.35,
                      false);
    EXPECT_TRUE(t_in.has_value());
    EXPECT_TRUE(t_out.has_value());
    return *t_out - *t_in;
  };
  const double reference =
      delay_of(builtin_backend().transient(ckt, 300.0, options, probes));
  const double measured = delay_of(b.transient(ckt, 300.0, options, probes));
  EXPECT_NEAR(measured, reference, 0.15 * reference + 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Engines, BackendConformance,
                         ::testing::ValuesIn(backend_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------
// ngspice deck generation + rawfile parsing (no binary required)
// ---------------------------------------------------------------------

TEST(NgspiceDeck, EmitsModelSourcesAndControlBlock) {
  const Circuit ckt = loaded_inverter();
  TransientOptions options;
  options.t_stop = 200e-12;
  options.steps = 400;
  const std::string deck = ngspice_deck(ckt, 300.0, options,
                                        NgspiceAnalysis::kTransient,
                                        "/tmp/x.raw");
  // The compact model rides in .func definitions; each FET is a
  // behavioral current source; sources are PWL; the control block
  // writes an ASCII rawfile.
  for (const char* needle :
       {".func sp(", ".func chn(", ".func chp(", "bfet", "PWL(",
        "set filetype=ascii", "write /tmp/x.raw all", ".options gmin="}) {
    EXPECT_NE(deck.find(needle), std::string::npos) << needle;
  }
  const std::string op_deck = ngspice_deck(
      ckt, 300.0, options, NgspiceAnalysis::kOperatingPoint, "/tmp/x.raw");
  EXPECT_NE(op_deck.find("\nop\n"), std::string::npos);
  EXPECT_EQ(op_deck.find("PWL("), std::string::npos);
}

TEST(NgspiceDeck, ConstantsTrackTemperature) {
  const Circuit ckt = loaded_inverter();
  const std::string warm = ngspice_deck(ckt, 300.0, {},
                                        NgspiceAnalysis::kOperatingPoint,
                                        "x.raw");
  const std::string cold = ngspice_deck(ckt, 10.0, {},
                                        NgspiceAnalysis::kOperatingPoint,
                                        "x.raw");
  // Same topology, different per-temperature model constants.
  EXPECT_NE(warm, cold);
}

TEST(NgspiceRawParse, RoundTripsAsciiPlot) {
  const std::string raw =
      "Title: cryoeda\n"
      "Date: today\n"
      "Plotname: Transient Analysis\n"
      "Flags: real\n"
      "No. Variables: 3\n"
      "No. Points: 2\n"
      "Variables:\n"
      "\t0\ttime\ttime\n"
      "\t1\tv(n1)\tvoltage\n"
      "\t2\tvsrc1#branch\tcurrent\n"
      "Values:\n"
      " 0\t0.0\n"
      "\t7.0e-01\n"
      "\t-1.0e-05\n"
      " 1\t1.0e-12\n"
      "\t6.5e-01\n"
      "\t-2.0e-05\n";
  const NgspiceRaw parsed = parse_ngspice_raw(raw);
  ASSERT_EQ(parsed.variables.size(), 3u);
  ASSERT_EQ(parsed.points(), 2u);
  EXPECT_DOUBLE_EQ(parsed.column("time")[1], 1.0e-12);
  EXPECT_DOUBLE_EQ(parsed.column("v(n1)")[0], 0.70);
  EXPECT_DOUBLE_EQ(parsed.column("vsrc1#branch")[1], -2.0e-5);
  EXPECT_THROW(parsed.column("v(nope)"), std::out_of_range);
}

TEST(NgspiceRawParse, RejectsComplexAndTruncatedPlots) {
  EXPECT_THROW(parse_ngspice_raw("Flags: complex\nNo. Variables: 1\n"),
               Error);
  try {
    parse_ngspice_raw("No. Variables: 2\nNo. Points: 3\nVariables:\n"
                      "\t0\ttime\ttime\n\t1\tv(n1)\tvoltage\nValues:\n"
                      " 0\t0.0\n\t0.7\n");
    FAIL() << "expected cryo::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
}

// ---------------------------------------------------------------------
// frozen golden: the refactored stack reproduces the pre-seam bytes
// ---------------------------------------------------------------------

/// Characterize the three golden cells through the backend seam and
/// compare bytes against the library frozen from the pre-refactor
/// monolithic Simulator path. This is the contract that extracting
/// `spice::Backend` changed no numerics anywhere in characterization.
class GoldenCharacterization : public ::testing::TestWithParam<double> {};

TEST_P(GoldenCharacterization, BuiltinReproducesPreRefactorBytes) {
  const double temperature_k = GetParam();
  const fs::path golden =
      fs::path{CRYO_TEST_DATA_DIR} /
      ("golden_char_" + std::to_string(static_cast<int>(temperature_k)) +
       "K.lib");
  ASSERT_TRUE(fs::exists(golden)) << golden;

  // Cold private artifact cache: the run must *compute*, not replay.
  const fs::path root = fs::temp_directory_path() /
                        ("cryoeda_test_golden_" +
                         std::to_string(::getpid()) + "_" +
                         std::to_string(static_cast<int>(temperature_k)));
  fs::remove_all(root);
  cryo::util::ArtifactCache::Config config;
  config.root = root;
  cryo::util::ArtifactCache::global().configure(std::move(config));

  std::vector<cryo::cells::CellSpec> catalog;
  for (const auto& spec : cryo::cells::standard_catalog()) {
    if (spec.name == "INV_X1" || spec.name == "NAND2_X1" ||
        spec.name == "DFF_X1") {
      catalog.push_back(spec);
    }
  }
  ASSERT_EQ(catalog.size(), 3u);
  cryo::cells::CharOptions options;
  options.threads = 1;
  const cryo::liberty::Library lib =
      cryo::cells::characterize(catalog, temperature_k, options);

  const fs::path out = root / "regen.lib";
  cryo::liberty::write_liberty(lib, out.string());
  auto slurp = [](const fs::path& p) {
    std::ifstream in{p, std::ios::binary};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  EXPECT_EQ(slurp(out), slurp(golden))
      << "characterization through the Backend seam diverged from the "
         "pre-refactor golden at "
      << temperature_k << " K";

  cryo::util::ArtifactCache::global().configure(
      cryo::util::ArtifactCache::env_config());
  std::error_code ec;
  fs::remove_all(root, ec);
}

INSTANTIATE_TEST_SUITE_P(Temps, GoldenCharacterization,
                         ::testing::Values(300.0, 10.0));

}  // namespace
