#pragma once

#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/flow.hpp"
#include "opt/lut_map.hpp"

namespace cryo::util {
class Budget;
}  // namespace cryo::util

namespace cryo::core {

/// Scriptable pass pipeline (ABC-style): every transform of the
/// synthesis flow registers as a *named pass* over a shared `FlowState`,
/// and recipe strings like
///
///   "c2rs; dch; if -K 6 -p pad; mfs; strash; map -p pad"
///
/// compile into `Pipeline`s. This is how the paper expresses its
/// reordered priority-list flows (§V-B): a scenario is a recipe string,
/// not a C++ branch. `core::synthesize` executes the canonical recipe
/// through this machinery, the Fig. 3 experiment runs three recipe
/// strings, and the `cryoeda` CLI driver accepts arbitrary `--script`s.

/// Version of the *pass-cache key format*, mixed into every `core.pass`
/// artifact-cache key (and into CI's `actions/cache` key). Bump it when
/// the set of inputs serialized into `pass_cache_inputs` changes — a new
/// flag, a new FlowOptions knob read by pass bodies — so old entries
/// keyed under the previous input set cannot collide with new ones.
/// Semantic changes to pass *bodies* with unchanged inputs are covered
/// by `util::kCacheSchemaVersion` instead.
inline constexpr int kPassCacheKeyVersion = 1;

/// Recipe parse / validation failure. `what()` carries an actionable
/// message with the offending segment, pass, and flag.
class RecipeError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Mutable state threaded through a pipeline run: the current AIG,
/// stage-2 scratch (structural choices, a pending LUT cover, the
/// checkpoint the `strash` guard compares against), the mapped netlist,
/// and the legacy `FlowResult` statistics.
struct FlowState {
  logic::Aig aig;                          ///< current network
  const map::CellMatcher* matcher = nullptr;  ///< needed by `map`
  FlowOptions options;                     ///< shared knobs (defaults)

  /// Structural choices from `dch` (consumed by `if`).
  std::vector<std::vector<logic::Lit>> choices;
  bool has_choices = false;
  /// Pending LUT cover between `if` and `strash`. Points at `aig`,
  /// whose address is stable for the lifetime of the state.
  std::optional<opt::LutMapping> luts;
  /// AIG entering stage 2 (set by `dch`, or by `if` when there is no
  /// `dch`): `strash` keeps it if the LUT round-trip inflated the
  /// network, mirroring the guard ABC scripts use.
  std::optional<logic::Aig> stage_checkpoint;

  map::Netlist netlist;
  bool has_netlist = false;

  unsigned initial_ands = 0;
  unsigned after_c2rs = 0;
  unsigned after_power_stage = 0;
  bool saw_strash = false;
  /// True once any pass in this run degraded (skipped, stopped early,
  /// or was reverted by the node-growth guard). Degraded results must
  /// never enter the artifact cache: they would be served to later
  /// *unbudgeted* runs as if they were full-quality.
  bool degraded = false;

  /// Shared resource budget for the whole run; nullptr means
  /// `util::Budget::global()`. See Pipeline::run for the degradation
  /// semantics.
  util::Budget* budget = nullptr;

  /// Per-pass artifact caching (see Pipeline::run): when true and the
  /// global `util::ArtifactCache` is enabled, the run skips the longest
  /// cached prefix of the recipe and stores each clean intermediate
  /// snapshot. `CRYOEDA_PASS_CACHE=0` disables it process-wide.
  bool use_pass_cache = true;
};

/// Kinds a pass argument value can take.
enum class ArgKind {
  kUInt,      ///< bounded unsigned integer, e.g. `-K 6`
  kPriority,  ///< cost-priority short name, e.g. `-p pad`
};

/// Declaration of one flag a pass accepts.
struct ArgSpec {
  std::string flag;  ///< e.g. "-K"
  ArgKind kind = ArgKind::kUInt;
  unsigned min_uint = 0;  ///< inclusive bounds for kUInt values
  unsigned max_uint = 0;
  std::string help;
};

/// Parsed, validated arguments of one pass invocation. Values are
/// stored canonically (spec order), so printing is deterministic and
/// `parse(print(p))` round-trips exactly.
class PassArgs {
public:
  bool has(std::string_view flag) const;
  /// Typed accessors; values were validated at parse time.
  unsigned get_uint(std::string_view flag, unsigned fallback) const;
  opt::CostPriority get_priority(std::string_view flag,
                                 opt::CostPriority fallback) const;

  /// (flag, canonical value) pairs in the pass's spec order.
  std::vector<std::pair<std::string, std::string>> values;
};

/// A named pass: metadata for parsing/diagnostics plus the transform.
struct Pass {
  std::string name;
  std::string help;
  std::vector<ArgSpec> args;
  /// Sequencing constraints, checked at parse time: `if` produces a
  /// pending LUT cover, `mfs`/`strash` require one, AIG transforms and
  /// `map` must not run while one is pending.
  bool needs_luts = false;
  bool makes_luts = false;
  bool aig_transform = false;
  /// Pass is backed by SAT calls (dch, mfs): an exhausted SAT-conflict
  /// ceiling makes Pipeline::run skip it instead of running it.
  bool uses_sat = false;
  /// Pass consults the budget internally and may stop early (c2rs,
  /// resub, dch, mfs): a budget found exhausted right after such a pass
  /// ran is recorded as a degradation.
  bool budget_aware = false;
  /// Eligible for the per-pass artifact cache. Embedder-registered
  /// passes (service `load_plugin`) set this false: their bodies are not
  /// part of the process image, so a cache entry keyed on just the pass
  /// name could collide across daemons with different plugin bodies.
  bool cacheable = true;
  std::function<void(FlowState&, const PassArgs&)> run;
};

/// Name -> pass table. `global()` holds the builtin flow passes
/// (balance, rewrite, refactor, resub, c2rs, dch, if, mfs, strash,
/// map); custom registries can be assembled via `add`.
class PassRegistry {
public:
  /// The builtin registry. Thread-safe to read; never mutated.
  static const PassRegistry& global();

  void add(Pass pass);
  const Pass* find(std::string_view name) const;
  /// All passes, sorted by name (for `cryoeda --list-passes`).
  std::vector<const Pass*> passes() const;

private:
  std::map<std::string, Pass, std::less<>> passes_;
};

/// One step of a compiled pipeline.
struct PassInvocation {
  const Pass* pass = nullptr;
  PassArgs args;
  /// Canonical rendering, e.g. "if -K 6 -p pad".
  std::string to_string() const;
};

/// A compiled recipe: an ordered pass sequence with validated arguments
/// and sequencing. Execute with `run`; print canonically with
/// `to_string` (the scenario artifact-cache key is built from it).
class Pipeline {
public:
  /// Compile a recipe string. Segments are ';'-separated, tokens
  /// whitespace-separated, empty segments ignored. Throws RecipeError
  /// with a precise diagnostic on an unknown pass, unknown/duplicate
  /// flag, missing/malformed/out-of-range value, or an invalid pass
  /// sequence (e.g. `mfs` without a preceding `if`).
  static Pipeline parse(std::string_view script,
                        const PassRegistry& registry = PassRegistry::global());

  /// Canonical recipe string: "c2rs; dch; if -K 6 -p pad; ...".
  std::string to_string() const;

  /// Execute the passes in order on `state`, wiring a `pass.<name>`
  /// obs span, a `pass.<name>.runs` counter, and a `pass.<name>.nodes`
  /// diagnostic gauge (AND nodes; LUTs while a cover is pending; gates
  /// after `map`) around every step. Throws RecipeError if a pass needs
  /// a matcher and `state.matcher` is null; propagates
  /// std::invalid_argument from option validation.
  ///
  /// Budget semantics (`state.budget`, or `util::Budget::global()`):
  ///  * cancellation throws cryo::Error{kBudget} at the next pass
  ///    boundary (and inside budget-aware kernels);
  ///  * a blown wall-clock deadline *degrades*: remaining optimization
  ///    passes are skipped — but `map` always runs, so the flow still
  ///    produces a netlist;
  ///  * an exhausted SAT-conflict ceiling skips only SAT-backed passes
  ///    (`uses_sat`: dch, mfs);
  ///  * a pass whose result exceeded the node-growth ceiling is reverted
  ///    to its input network;
  ///  * every skipped / stopped-early / reverted pass bumps
  ///    `pass.<name>.degraded`, surfaced in the report's `degradation`
  ///    section (absent from the signoff profile).
  ///
  /// Per-pass artifact caching (stage `core.pass` of the global
  /// `util::ArtifactCache`, gated by `state.use_pass_cache` and
  /// `CRYOEDA_PASS_CACHE`): each pass whose incoming state and result
  /// both round-trip through a snapshot (the AIG transforms and `dch` —
  /// not `if`/`mfs`/`strash`/`map`, whose states carry a pending LUT
  /// cover or a netlist) is keyed on {incoming `state_fingerprint`,
  /// canonical pass print, library fingerprint, the FlowOptions knobs
  /// passes read} and its resulting snapshot is stored after it runs.
  /// A later run walks the recipe front-to-back, restoring cached
  /// snapshots until the first miss or non-snapshotable pass — the
  /// longest cached prefix — and executes only the remainder. Restored
  /// passes bump `cache.pass_hits`; each failed probe bumps
  /// `cache.pass_misses`. Degraded passes are never stored (same rule
  /// as the scenario cache), and a corrupt or fingerprint-mismatched
  /// entry falls back to recomputation (`cache.corrupt`).
  void run(FlowState& state) const;

  const std::vector<PassInvocation>& sequence() const { return sequence_; }

private:
  std::vector<PassInvocation> sequence_;
};

/// The canonical recipe equivalent to `core::synthesize(options)`:
/// `c2rs[; dch]; if -K <lut_k> -p <priority>[; mfs]; strash;
/// map -p <priority>` (dch/mfs present per `use_choices`/`use_mfs`).
std::string canonical_recipe(const FlowOptions& options);

}  // namespace cryo::core
