#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace cryo::util {

/// Cooperative resource budget threaded through the flow: a wall-clock
/// deadline, a total SAT-conflict ceiling, an AIG node-growth ceiling,
/// and a cancellation token. Thread-safe (all state is atomic) and
/// near-free when unconstrained — every check short-circuits on a
/// relaxed load before touching a clock.
///
/// Semantics, enforced by `core::Pipeline` and the kernels it calls:
///  * **cancellation is hard**: the next cooperative checkpoint throws
///    `cryo::Error{kBudget}` and the flow aborts;
///  * **deadline and SAT ceiling are soft**: exhaustion makes passes
///    *degrade* — skip, stop early, or keep unproven equivalences
///    unmerged — so the flow still completes end-to-end and produces a
///    netlist, recorded via `pass.<name>.degraded` counters;
///  * the node-growth ceiling bounds how much any single AIG transform
///    may inflate the network before its result is reverted.
///
/// `Budget::global()` is the process-wide instance, configured from the
/// environment on first use (unlimited when unset):
///  * CRYOEDA_DEADLINE    — wall-clock budget in seconds (> 0);
///  * CRYOEDA_SAT_BUDGET  — total SAT conflict ceiling (>= 0; 0 means
///                          "exhausted from the start": every SAT-backed
///                          pass degrades deterministically);
///  * CRYOEDA_NODE_GROWTH — max per-pass AIG growth factor (> 0).
class Budget {
public:
  Budget() = default;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  // --- configuration ---------------------------------------------------

  /// Arm the deadline `seconds` from now (steady clock).
  void set_deadline_in(double seconds);
  void clear_deadline();
  /// Total conflicts all solvers sharing this budget may spend together;
  /// negative = unlimited (the default).
  void set_sat_conflict_ceiling(std::int64_t conflicts);
  /// Max factor any single AIG transform may grow the network by;
  /// <= 0 disables the ceiling (the default).
  void set_node_growth_limit(double factor);
  /// Request a hard stop at the next cooperative checkpoint.
  void cancel();
  /// Back to unlimited and uncancelled (tests reuse one instance).
  void reset();

  // --- checks ----------------------------------------------------------

  /// Any constraint armed at all? False for a default instance, so the
  /// unbudgeted flow pays only this one relaxed load per check.
  bool active() const;
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool deadline_exceeded() const;
  bool sat_exhausted() const {
    const std::int64_t ceiling = sat_ceiling_.load(std::memory_order_relaxed);
    return ceiling >= 0 &&
           sat_spent_.load(std::memory_order_relaxed) >= ceiling;
  }
  /// Out of a *soft* resource (deadline or SAT ceiling): degrade.
  bool soft_exhausted() const {
    return deadline_exceeded() || sat_exhausted();
  }
  /// Any reason to stop work, hard or soft.
  bool exhausted() const { return cancelled() || soft_exhausted(); }

  double node_growth_limit() const {
    return node_growth_.load(std::memory_order_relaxed);
  }

  /// Throw cryo::Error{kBudget, "cancelled in <where>"} if cancelled.
  void check_cancelled(std::string_view where) const;

  // --- SAT accounting --------------------------------------------------

  /// Charge `n` conflicts against the ceiling (no-op when unlimited).
  void charge_sat_conflicts(std::int64_t n) {
    if (sat_ceiling_.load(std::memory_order_relaxed) >= 0) {
      sat_spent_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::int64_t sat_conflicts_spent() const {
    return sat_spent_.load(std::memory_order_relaxed);
  }
  /// Per-call conflict limit honoring both the caller's `requested`
  /// limit and whatever remains under the ceiling (-1 = unlimited).
  std::int64_t sat_call_limit(std::int64_t requested) const;

  /// The process-wide budget, configured from the environment (header
  /// comment) on first use.
  static Budget& global();

private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady-clock ns
  std::atomic<std::int64_t> sat_ceiling_{-1};
  std::atomic<std::int64_t> sat_spent_{0};
  std::atomic<double> node_growth_{0.0};
};

}  // namespace cryo::util
