#include "spice/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/obs.hpp"

namespace cryo::spice {

namespace obs = util::obs;

const Trace& TransientResult::trace(NodeId node) const {
  for (const auto& t : traces) {
    if (t.node == node) {
      return t;
    }
  }
  throw std::out_of_range{"TransientResult: node was not probed"};
}

Simulator::Simulator(const Circuit& circuit, double temperature_k)
    : circuit_{circuit}, temperature_{temperature_k} {
  models_.reserve(circuit.fets().size());
  for (const auto& fet : circuit.fets()) {
    models_.emplace_back(fet.params, temperature_k);
  }
  free_index_.assign(circuit.num_nodes(), -1);
  for (NodeId n = 1; n < circuit.num_nodes(); ++n) {
    if (!circuit.is_driven(n)) {
      free_index_[n] = static_cast<int>(free_nodes_.size());
      free_nodes_.push_back(n);
    }
  }
}

namespace {

/// Current into the "hi" terminal of a FET treated as a symmetric
/// conductor between its drain and source, with derivatives w.r.t. the
/// gate / hi / lo node voltages.
struct FetCurrents {
  NodeId hi;
  NodeId lo;
  double i;      ///< current flowing hi -> lo through the channel
  double di_dg;  ///< derivative w.r.t. gate voltage
  double di_dhi;
  double di_dlo;
};

FetCurrents eval_fet(const FetInstance& fet, const device::FinFetModel& model,
                     const std::vector<double>& v) {
  FetCurrents out{};
  const double vg = v[fet.gate];
  const double vd = v[fet.drain];
  const double vs = v[fet.source];
  // The physical source is whichever diffusion terminal sits at the lower
  // (n-type) / higher (p-type) potential; swapping keeps the model in its
  // forward region and makes pass-gates work in both directions.
  if (fet.params.polarity == device::Polarity::kN) {
    const bool fwd = vd >= vs;
    out.hi = fwd ? fet.drain : fet.source;
    out.lo = fwd ? fet.source : fet.drain;
    const auto op =
        model.evaluate(vg - v[out.lo], v[out.hi] - v[out.lo], fet.nfins);
    out.i = op.ids;
    out.di_dg = op.gm;
    out.di_dhi = op.gds;
    out.di_dlo = -op.gm - op.gds;
  } else {
    // p-type: conduction pulls the low terminal up toward the high one;
    // the model sees source-referred magnitudes (Vsg, Vsd).
    const bool fwd = vs >= vd;
    out.hi = fwd ? fet.source : fet.drain;
    out.lo = fwd ? fet.drain : fet.source;
    const auto op =
        model.evaluate(v[out.hi] - vg, v[out.hi] - v[out.lo], fet.nfins);
    out.i = op.ids;
    out.di_dg = -op.gm;
    out.di_dhi = op.gm + op.gds;
    out.di_dlo = -op.gds;
  }
  return out;
}

}  // namespace

void Simulator::assemble(const std::vector<double>& v, double gmin,
                         const std::vector<CapStamp>* caps,
                         std::vector<double>& leaving,
                         DenseMatrix* jac) const {
  std::fill(leaving.begin(), leaving.end(), 0.0);
  if (jac != nullptr) {
    jac->clear();
  }

  auto stamp_jac = [&](NodeId row_node, NodeId col_node, double value) {
    if (jac == nullptr) {
      return;
    }
    const int r = free_index_[row_node];
    const int c = free_index_[col_node];
    if (r >= 0 && c >= 0) {
      jac->at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) +=
          value;
    }
  };

  // FETs.
  for (std::size_t i = 0; i < circuit_.fets().size(); ++i) {
    const auto& fet = circuit_.fets()[i];
    const auto fc = eval_fet(fet, models_[i], v);
    leaving[fc.hi] += fc.i;
    leaving[fc.lo] -= fc.i;
    const NodeId g = fet.gate;
    stamp_jac(fc.hi, g, fc.di_dg);
    stamp_jac(fc.hi, fc.hi, fc.di_dhi);
    stamp_jac(fc.hi, fc.lo, fc.di_dlo);
    stamp_jac(fc.lo, g, -fc.di_dg);
    stamp_jac(fc.lo, fc.hi, -fc.di_dhi);
    stamp_jac(fc.lo, fc.lo, -fc.di_dlo);
  }

  // Resistors.
  for (const auto& res : circuit_.resistors()) {
    const double g = 1.0 / res.ohms;
    const double i = g * (v[res.a] - v[res.b]);
    leaving[res.a] += i;
    leaving[res.b] -= i;
    stamp_jac(res.a, res.a, g);
    stamp_jac(res.a, res.b, -g);
    stamp_jac(res.b, res.a, -g);
    stamp_jac(res.b, res.b, g);
  }

  // Capacitor companion models (transient only).
  if (caps != nullptr) {
    for (const auto& cap : *caps) {
      const double i = cap.geq * (v[cap.a] - v[cap.b]) + cap.ieq;
      leaving[cap.a] += i;
      leaving[cap.b] -= i;
      stamp_jac(cap.a, cap.a, cap.geq);
      stamp_jac(cap.a, cap.b, -cap.geq);
      stamp_jac(cap.b, cap.a, -cap.geq);
      stamp_jac(cap.b, cap.b, cap.geq);
    }
  }

  // gmin shunts to ground on every non-ground node (keeps otherwise
  // floating nodes defined and aids Newton convergence).
  for (NodeId n = 1; n < circuit_.num_nodes(); ++n) {
    leaving[n] += gmin * v[n];
    stamp_jac(n, n, gmin);
  }
}

bool Simulator::newton_solve(std::vector<double>& v, double gmin,
                             const TransientOptions& options,
                             const std::vector<CapStamp>* caps) const {
  const std::size_t nf = free_nodes_.size();
  if (nf == 0) {
    return true;
  }
  std::vector<double> leaving(static_cast<std::size_t>(circuit_.num_nodes()));
  DenseMatrix jac{nf};
  std::vector<double> rhs(nf);

  static obs::Histogram& iter_hist = obs::histogram("spice.newton_iters");
  static obs::Counter& nonconv = obs::counter("spice.newton_nonconverged");

  for (int iter = 0; iter < options.max_newton; ++iter) {
    assemble(v, gmin, caps, leaving, &jac);
    double worst_residual = 0.0;
    for (std::size_t k = 0; k < nf; ++k) {
      rhs[k] = -leaving[free_nodes_[k]];
      worst_residual = std::max(worst_residual, std::fabs(rhs[k]));
    }
    if (!solve_in_place(jac, rhs)) {
      return false;
    }
    double worst_step = 0.0;
    for (std::size_t k = 0; k < nf; ++k) {
      const double dv = std::clamp(rhs[k], -options.vstep_limit,
                                   options.vstep_limit);
      v[free_nodes_[k]] += dv;
      worst_step = std::max(worst_step, std::fabs(dv));
    }
    // Converged when the KCL residual is tiny and the iterate has
    // stopped moving; after many iterations accept on residual alone
    // (derivative kinks at the source/drain swap point can make the
    // step chatter while the solution is already exact to tolerance).
    if (worst_residual < options.abstol &&
        (worst_step < 1e-7 || iter > 30)) {
      iter_hist.record(static_cast<double>(iter + 1));
      return true;
    }
  }
  nonconv.add();
  return false;
}

std::vector<double> Simulator::dc(double time) {
  obs::counter("spice.dc_solves").add();
  std::vector<double> v(static_cast<std::size_t>(circuit_.num_nodes()), 0.0);
  TransientOptions options;  // Newton knobs only

  auto apply_sources = [&](double scale) {
    for (const auto& src : circuit_.sources()) {
      v[src.node] = scale * src.waveform.at(time);
    }
  };

  apply_sources(1.0);
  if (newton_solve(v, options.gmin, options, nullptr)) {
    return v;
  }

  // Source stepping: ramp the supplies up from zero, reusing each converged
  // solution as the next starting point.
  obs::counter("spice.dc_source_stepping").add();
  std::fill(v.begin(), v.end(), 0.0);
  for (int step = 1; step <= 20; ++step) {
    apply_sources(static_cast<double>(step) / 20.0);
    if (!newton_solve(v, options.gmin, options, nullptr)) {
      // Relax gmin progressively if a step fails.
      bool ok = false;
      for (double g = 1e-9; g >= options.gmin; g *= 1e-1) {
        if (newton_solve(v, g, options, nullptr)) {
          ok = true;
        }
      }
      if (!ok) {
        throw std::runtime_error{"Simulator::dc: no operating point found"};
      }
    }
  }
  return v;
}

double Simulator::source_current(const std::vector<double>& voltages,
                                 NodeId node) const {
  std::vector<double> leaving(static_cast<std::size_t>(circuit_.num_nodes()));
  assemble(voltages, 0.0, nullptr, leaving, nullptr);
  return leaving[node];
}

TransientResult Simulator::transient(const TransientOptions& options,
                                     const std::vector<NodeId>& probes) {
  if (options.steps < 2 || options.t_stop <= 0.0) {
    throw std::invalid_argument{"Simulator::transient: bad options"};
  }
  util::faultinject::maybe_fail("spice.solve", ErrorKind::kNumeric);
  obs::counter("spice.transient_runs").add();
  obs::counter("spice.transient_steps")
      .add(static_cast<std::uint64_t>(options.steps));
  const double h = options.t_stop / static_cast<double>(options.steps);

  TransientResult result;
  result.traces.reserve(probes.size());
  for (NodeId p : probes) {
    result.traces.push_back({p, {}});
  }

  std::vector<double> v = dc(0.0);

  // Capacitor state: trapezoidal companion (geq fixed for fixed h).
  std::vector<CapStamp> caps;
  std::vector<double> cap_current(circuit_.caps().size(), 0.0);
  caps.reserve(circuit_.caps().size());
  for (const auto& c : circuit_.caps()) {
    caps.push_back({c.a, c.b, 2.0 * c.farads / h, 0.0});
  }

  std::vector<double> leaving(static_cast<std::size_t>(circuit_.num_nodes()));
  std::unordered_map<NodeId, double> prev_power;
  std::unordered_map<NodeId, double> prev_current;

  auto record = [&](double t) {
    result.times.push_back(t);
    for (auto& trace : result.traces) {
      trace.values.push_back(v[trace.node]);
    }
  };

  auto source_flows = [&](const std::vector<CapStamp>* cap_stamps) {
    assemble(v, options.gmin, cap_stamps, leaving, nullptr);
    std::unordered_map<NodeId, std::pair<double, double>> flows;  // (i, p)
    for (const auto& src : circuit_.sources()) {
      const double i = leaving[src.node];
      flows[src.node] = {i, i * v[src.node]};
    }
    return flows;
  };

  record(0.0);
  for (const auto& [node, ip] : source_flows(nullptr)) {
    prev_current[node] = ip.first;
    prev_power[node] = ip.second;
    result.source_charge[node] = 0.0;
    result.source_energy[node] = 0.0;
  }

  for (int step = 1; step <= options.steps; ++step) {
    const double t = h * static_cast<double>(step);
    // History terms from the previous accepted solution.
    for (std::size_t k = 0; k < caps.size(); ++k) {
      const auto& c = circuit_.caps()[k];
      caps[k].ieq = -caps[k].geq * (v[c.a] - v[c.b]) - cap_current[k];
    }
    for (const auto& src : circuit_.sources()) {
      v[src.node] = src.waveform.at(t);
    }
    if (!newton_solve(v, options.gmin, options, &caps)) {
      throw Error{ErrorKind::kNumeric,
                  "Simulator::transient: Newton failed at t = " +
                      std::to_string(t)};
    }
    for (std::size_t k = 0; k < caps.size(); ++k) {
      const auto& c = circuit_.caps()[k];
      cap_current[k] = caps[k].geq * (v[c.a] - v[c.b]) + caps[k].ieq;
    }
    record(t);
    for (const auto& [node, ip] : source_flows(&caps)) {
      result.source_charge[node] += 0.5 * h * (prev_current[node] + ip.first);
      result.source_energy[node] += 0.5 * h * (prev_power[node] + ip.second);
      prev_current[node] = ip.first;
      prev_power[node] = ip.second;
    }
  }
  return result;
}

}  // namespace cryo::spice
