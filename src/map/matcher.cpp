#include "map/matcher.hpp"

#include <algorithm>

#include "liberty/function.hpp"
#include "logic/tt.hpp"
#include "util/strings.hpp"

namespace cryo::map {

CellMatcher::CellMatcher(const liberty::Library& library, unsigned max_inputs,
                         unsigned max_matches_per_key)
    : library_{&library},
      max_inputs_{max_inputs},
      max_matches_per_key_{max_matches_per_key} {
  for (const auto& cell : library.cells) {
    if (cell.is_sequential) {
      continue;
    }
    if (util::starts_with(cell.name, "TIE")) {
      if (cell.name == "TIEHI") {
        tiehi_ = &cell;
      } else if (cell.name == "TIELO") {
        tielo_ = &cell;
      }
      continue;
    }
    const auto inputs = cell.input_names();
    const auto n = static_cast<unsigned>(inputs.size());
    if (n == 0 || n > max_inputs) {
      continue;
    }
    const auto* out = cell.output_pin();
    if (out == nullptr || out->function.empty()) {
      continue;
    }
    const std::uint64_t f =
        liberty::function_truth_table(out->function, inputs);

    // Track the cheapest inverter/buffer for phase fixups.
    if (n == 1) {
      const bool inverts = (f & 1ull) != 0;
      if (inverts && (inverter_ == nullptr || cell.area < inverter_->area)) {
        inverter_ = &cell;
      }
      if (!inverts && (buffer_ == nullptr || cell.area < buffer_->area)) {
        buffer_ = &cell;
      }
    }

    const logic::NpnCanon canon = logic::npn_canonicalize(f, n);
    auto& bucket = tables_[n][canon.signature];
    if (bucket.size() >= max_matches_per_key) {
      continue;
    }
    // One binding per cell per class (cell symmetries add nothing: the
    // composed match differs only in equivalent pin assignments).
    if (std::any_of(bucket.begin(), bucket.end(), [&](const CellBinding& b) {
          return b.cell == &cell;
        })) {
      continue;
    }
    CellBinding binding;
    binding.cell = &cell;
    binding.to_canon = canon.transform;
    bucket.push_back(binding);
  }
}

const std::vector<CellBinding>* CellMatcher::find_class(
    std::uint64_t signature, unsigned n) const {
  if (n >= tables_.size()) {
    return nullptr;
  }
  const auto it = tables_[n].find(signature);
  return it == tables_[n].end() ? nullptr : &it->second;
}

Match CellMatcher::bind(const CellBinding& binding,
                        const logic::NpnTransform& cut_transform, unsigned n) {
  // cut_tt --cut_transform--> signature <--to_canon-- f_cell, so
  // cut_tt = npn_apply(f_cell, n, cut_transform⁻¹ ∘ to_canon).
  const logic::NpnTransform m = logic::npn_compose(
      logic::npn_inverse(cut_transform, n), binding.to_canon, n);
  Match match;
  match.cell = binding.cell;
  match.perm.assign(m.perm.begin(), m.perm.begin() + n);
  match.input_phase = m.input_phase & ((1u << n) - 1u);
  match.out_invert = m.out_negate;
  return match;
}

std::vector<Match> CellMatcher::matches(std::uint64_t tt, unsigned n) const {
  std::vector<Match> out;
  if (n >= tables_.size()) {
    return out;
  }
  const logic::NpnCanon canon = logic::npn_canonicalize(tt, n);
  const auto* bindings = find_class(canon.signature, n);
  if (bindings == nullptr) {
    return out;
  }
  out.reserve(bindings->size());
  for (const CellBinding& binding : *bindings) {
    out.push_back(bind(binding, canon.transform, n));
  }
  return out;
}

}  // namespace cryo::map
