#include <gtest/gtest.h>

#include <cmath>

#include "device/finfet.hpp"
#include "spice/circuit.hpp"
#include "spice/linear.hpp"
#include "spice/measure.hpp"
#include "spice/pwl.hpp"
#include "spice/simulator.hpp"

namespace {

using namespace cryo::spice;
using cryo::device::nominal_nfet_5nm;
using cryo::device::nominal_pfet_5nm;

TEST(Linear, SolvesKnownSystem) {
  DenseMatrix a{2};
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> b{5.0, 10.0};
  ASSERT_TRUE(solve_in_place(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Linear, RequiresPivoting) {
  DenseMatrix a{2};
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b{2.0, 3.0};
  ASSERT_TRUE(solve_in_place(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Linear, DetectsSingular) {
  DenseMatrix a{2};
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b{1.0, 2.0};
  EXPECT_FALSE(solve_in_place(a, b));
}

TEST(Pwl, RampShape) {
  const auto w = Pwl::ramp(0.0, 1.0, 10e-12, 20e-12);
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(10e-12), 0.0);
  EXPECT_NEAR(w.at(20e-12), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.at(1.0), 1.0);
}

TEST(Pwl, RejectsUnorderedPoints) {
  Pwl w;
  w.add_point(1.0, 0.0);
  EXPECT_THROW(w.add_point(0.5, 1.0), std::invalid_argument);
}

TEST(Circuit, NodeManagement) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  EXPECT_EQ(ckt.add_node("a"), a);  // idempotent
  EXPECT_EQ(ckt.node("a"), a);
  EXPECT_THROW(ckt.node("missing"), std::out_of_range);
  EXPECT_TRUE(ckt.is_driven(kGround));
  EXPECT_FALSE(ckt.is_driven(a));
  ckt.set_source(a, Pwl::constant(1.0));
  EXPECT_TRUE(ckt.is_driven(a));
}

TEST(Circuit, RejectsBadElements) {
  Circuit ckt;
  const NodeId a = ckt.add_node("a");
  EXPECT_THROW(ckt.add_res(a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_cap(a, kGround, -1e-15), std::invalid_argument);
  EXPECT_THROW(ckt.add_fet(nominal_nfet_5nm(), a, a, kGround, 0),
               std::invalid_argument);
}

/// RC divider: V(out) should settle to V * R2/(R1+R2).
TEST(Simulator, ResistiveDividerDc) {
  Circuit ckt;
  const NodeId vin = ckt.add_node("in");
  const NodeId mid = ckt.add_node("mid");
  ckt.add_res(vin, mid, 1000.0);
  ckt.add_res(mid, kGround, 3000.0);
  ckt.set_source(vin, Pwl::constant(1.0));
  Simulator sim{ckt, 300.0};
  const auto v = sim.dc();
  EXPECT_NEAR(v[mid], 0.75, 1e-6);
}

/// RC step response: v(t) = V(1 - exp(-t/RC)).
TEST(Simulator, RcStepMatchesAnalytic) {
  Circuit ckt;
  const NodeId vin = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  const double r = 10e3;
  const double c = 1e-15;
  ckt.add_res(vin, out, r);
  ckt.add_cap(out, kGround, c);
  ckt.set_source(vin, Pwl::ramp(0.0, 1.0, 0.0, 1e-15));  // ~step
  Simulator sim{ckt, 300.0};
  TransientOptions opt;
  opt.t_stop = 100e-12;  // = 10 tau
  opt.steps = 1000;
  const auto res = sim.transient(opt, {out});
  const auto& trace = res.trace(out).values;
  for (std::size_t i = 10; i < res.times.size(); i += 100) {
    const double expected = 1.0 - std::exp(-res.times[i] / (r * c));
    EXPECT_NEAR(trace[i], expected, 0.02) << "t=" << res.times[i];
  }
  // Energy drawn from the source for charging C to V:  C*V^2 total.
  EXPECT_NEAR(res.source_energy.at(vin), c * 1.0, 0.05 * c);
}

TEST(Simulator, InverterDcTransferIsInverting) {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add_fet(nominal_nfet_5nm(), in, out, kGround, 2);
  ckt.add_fet(nominal_pfet_5nm(), in, out, vdd, 3);
  ckt.set_source(vdd, Pwl::constant(0.7));
  double prev = 1e9;
  for (double vin = 0.0; vin <= 0.7; vin += 0.05) {
    ckt.set_source(in, Pwl::constant(vin));
    Simulator sim{ckt, 300.0};
    const auto v = sim.dc();
    EXPECT_LE(v[out], prev + 1e-6);
    prev = v[out];
  }
  ckt.set_source(in, Pwl::constant(0.0));
  {
    Simulator sim{ckt, 300.0};
    EXPECT_NEAR(sim.dc()[out], 0.7, 1e-3);
  }
  ckt.set_source(in, Pwl::constant(0.7));
  {
    Simulator sim{ckt, 300.0};
    EXPECT_NEAR(sim.dc()[out], 0.0, 1e-3);
  }
}

class InverterDelayAtTemps : public ::testing::TestWithParam<double> {};

TEST_P(InverterDelayAtTemps, ReasonableDelayAndFullSwing) {
  const double temp = GetParam();
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add_fet(nominal_nfet_5nm(), in, out, kGround, 2);
  ckt.add_fet(nominal_pfet_5nm(), in, out, vdd, 3);
  ckt.add_cap(out, kGround, 1e-15);
  ckt.set_source(vdd, Pwl::constant(0.7));
  ckt.set_source(in, Pwl::ramp(0.0, 0.7, 20e-12, 10e-12));
  Simulator sim{ckt, temp};
  TransientOptions opt;
  opt.t_stop = 200e-12;
  opt.steps = 400;
  const auto res = sim.transient(opt, {in, out});
  const auto t_in = crossing_time(res.times, res.trace(in).values, 0.35, true);
  const auto t_out =
      crossing_time(res.times, res.trace(out).values, 0.35, false);
  ASSERT_TRUE(t_in.has_value());
  ASSERT_TRUE(t_out.has_value());
  const double delay = *t_out - *t_in;
  EXPECT_GT(delay, 0.5e-12);
  EXPECT_LT(delay, 50e-12);
  EXPECT_TRUE(settled(res.trace(out).values, 0.0, 0.01));
}

INSTANTIATE_TEST_SUITE_P(Temps, InverterDelayAtTemps,
                         ::testing::Values(300.0, 200.0, 77.0, 10.0));

TEST(Simulator, PassGateConductsBothDirections) {
  // Transmission gate driven from either side must transfer the value
  // (exercises the source/drain swap path of the FET stamp).
  for (const bool forward : {true, false}) {
    Circuit ckt;
    const NodeId vdd = ckt.add_node("vdd");
    const NodeId a = ckt.add_node("a");
    const NodeId b = ckt.add_node("b");
    const NodeId en = ckt.add_node("en");
    const NodeId enb = ckt.add_node("enb");
    ckt.add_fet(nominal_nfet_5nm(), en, forward ? b : a, forward ? a : b, 2);
    ckt.add_fet(nominal_pfet_5nm(), enb, forward ? b : a, forward ? a : b, 2);
    ckt.add_cap(b, kGround, 1e-15);
    ckt.set_source(vdd, Pwl::constant(0.7));
    ckt.set_source(en, Pwl::constant(0.7));
    ckt.set_source(enb, Pwl::constant(0.0));
    ckt.set_source(a, Pwl::constant(0.7));
    Simulator sim{ckt, 300.0};
    const auto v = sim.dc();
    EXPECT_NEAR(v[b], 0.7, 0.01) << "forward=" << forward;
  }
}

TEST(Measure, CrossingAndTransition) {
  const std::vector<double> t{0, 1, 2, 3, 4};
  const std::vector<double> v{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto cross = crossing_time(t, v, 0.5, true);
  ASSERT_TRUE(cross.has_value());
  EXPECT_NEAR(*cross, 2.0, 1e-12);
  const auto rise = transition_time(t, v, 0.0, 1.0);
  ASSERT_TRUE(rise.has_value());
  EXPECT_NEAR(*rise, 3.2, 1e-9);  // 10% at 0.4, 90% at 3.6
  EXPECT_FALSE(crossing_time(t, v, 0.5, false).has_value());
}

TEST(Measure, FallingTransition) {
  const std::vector<double> t{0, 1, 2, 3, 4};
  const std::vector<double> v{1.0, 0.75, 0.5, 0.25, 0.0};
  const auto fall = transition_time(t, v, 1.0, 0.0);
  ASSERT_TRUE(fall.has_value());
  EXPECT_NEAR(*fall, 3.2, 1e-9);
}

TEST(Simulator, LeakageDropsAtCryo) {
  Circuit ckt;
  const NodeId vdd = ckt.add_node("vdd");
  const NodeId in = ckt.add_node("in");
  const NodeId out = ckt.add_node("out");
  ckt.add_fet(nominal_nfet_5nm(), in, out, kGround, 2);
  ckt.add_fet(nominal_pfet_5nm(), in, out, vdd, 3);
  ckt.set_source(vdd, Pwl::constant(0.7));
  ckt.set_source(in, Pwl::constant(0.0));
  Simulator warm{ckt, 300.0};
  Simulator cold{ckt, 10.0};
  const double i_warm = warm.source_current(warm.dc(), vdd);
  const double i_cold = cold.source_current(cold.dc(), vdd);
  EXPECT_LT(i_cold, i_warm * 1e-2);
  EXPECT_GT(i_cold, 0.0);
}

}  // namespace
