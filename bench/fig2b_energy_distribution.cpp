// Reproduction of paper Fig. 2(b): the distribution of switching energy
// of all library cells at 300 K vs 10 K. The paper's observation: cells
// exhibit slightly less energy at 10 K (lower effective gate capacitance
// from the band-tail shift of the surface potential, and no crowbar
// current once Vth_n + Vth_p exceeds Vdd).

#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace cryo;

int main() {
  std::printf(
      "=== Fig. 2(b): switching-energy distribution, 300 K vs 10 K ===\n\n");
  const auto warm = bench::corner_library(300.0);
  const auto cold = bench::corner_library(10.0);

  constexpr double kSlew = 10e-12;
  constexpr double kLoad = 1e-15;

  util::Table rows{{"cell", "energy_300K [fJ]", "energy_10K [fJ]", "ratio"}};
  std::vector<double> e_warm;
  std::vector<double> e_cold;
  for (const auto& cell : warm.cells) {
    const auto* cold_cell = cold.find(cell.name);
    if (cold_cell == nullptr || cell.power_arcs.empty() ||
        cell.is_sequential) {
      continue;
    }
    const double ew = cell.typical_energy(kSlew, kLoad) * 1e15;
    const double ec = cold_cell->typical_energy(kSlew, kLoad) * 1e15;
    e_warm.push_back(ew);
    e_cold.push_back(ec);
    rows.add_row({cell.name, util::Table::num(ew, 3),
                  util::Table::num(ec, 3),
                  util::Table::num(ew > 0 ? ec / ew : 1.0, 3)});
  }
  rows.write_csv(bench::csv_path("fig2b_energies.csv"));

  const auto s_warm = util::summarize(e_warm);
  const auto s_cold = util::summarize(e_cold);
  util::Table summary{{"corner", "cells", "mean [fJ]", "median [fJ]",
                       "p5 [fJ]", "p95 [fJ]"}};
  summary.add_row({"300 K", std::to_string(s_warm.count),
                   util::Table::num(s_warm.mean, 3),
                   util::Table::num(s_warm.median, 3),
                   util::Table::num(s_warm.p5, 3),
                   util::Table::num(s_warm.p95, 3)});
  summary.add_row({"10 K", std::to_string(s_cold.count),
                   util::Table::num(s_cold.mean, 3),
                   util::Table::num(s_cold.median, 3),
                   util::Table::num(s_cold.p5, 3),
                   util::Table::num(s_cold.p95, 3)});
  std::printf("%s\n", summary.render().c_str());

  const double hi = std::max(s_warm.p95, s_cold.p95) * 1.2;
  util::Histogram h_warm{0.0, hi, 16};
  util::Histogram h_cold{0.0, hi, 16};
  h_warm.add_all(e_warm);
  h_cold.add_all(e_cold);
  std::printf("300 K switching-energy distribution:\n%s\n",
              h_warm.render().c_str());
  std::printf("10 K switching-energy distribution:\n%s\n",
              h_cold.render().c_str());
  std::printf("paper check: slightly less energy at 10 K (mean %+.1f %%)\n",
              (s_cold.mean / s_warm.mean - 1.0) * 100.0);
  std::printf("per-cell data: %s\n",
              bench::csv_path("fig2b_energies.csv").c_str());
  bench::write_bench_report("fig2b_energy_distribution");
  return 0;
}
