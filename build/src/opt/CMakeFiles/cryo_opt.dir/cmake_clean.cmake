file(REMOVE_RECURSE
  "CMakeFiles/cryo_opt.dir/cost.cpp.o"
  "CMakeFiles/cryo_opt.dir/cost.cpp.o.d"
  "CMakeFiles/cryo_opt.dir/lut_map.cpp.o"
  "CMakeFiles/cryo_opt.dir/lut_map.cpp.o.d"
  "CMakeFiles/cryo_opt.dir/passes.cpp.o"
  "CMakeFiles/cryo_opt.dir/passes.cpp.o.d"
  "libcryo_opt.a"
  "libcryo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
