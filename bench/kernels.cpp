// Micro-benchmarks (google-benchmark) of the synthesis kernels: AIG
// construction/strashing, bit-parallel simulation, cut enumeration, SAT
// solving, the optimization passes, the compact-model evaluation that
// dominates characterization, and the thread-count scaling of the
// parallel characterization/synthesis drivers (Arg = worker count).

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "cells/catalog.hpp"
#include "cells/characterize.hpp"
#include "core/experiment.hpp"
#include "device/finfet.hpp"
#include "epfl/benchmarks.hpp"
#include "logic/cuts.hpp"
#include "logic/npn.hpp"
#include "logic/simulate.hpp"
#include "logic/tt.hpp"
#include "map/mapper.hpp"
#include "opt/passes.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

/// Characterized mini-catalog library + matcher, built once. Used by the
/// matcher microbenchmarks and the deterministic counter probes.
const cryo::liberty::Library& mini_library() {
  static const auto lib = [] {
    cryo::cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 64e-12};
    options.loads = {2e-16, 8e-16, 3.2e-15};
    options.include_sequential = false;
    return cryo::cells::characterize(cryo::cells::mini_catalog(), 10.0,
                                     options);
  }();
  return lib;
}

const cryo::map::CellMatcher& mini_matcher() {
  static const cryo::map::CellMatcher matcher{mini_library()};
  return matcher;
}

void BM_FinFetEvaluate(benchmark::State& state) {
  const cryo::device::FinFetModel model{cryo::device::nominal_nfet_5nm(),
                                        10.0};
  double vgs = 0.31;
  for (auto _ : state) {
    vgs = vgs > 0.7 ? 0.1 : vgs + 1e-4;
    benchmark::DoNotOptimize(model.evaluate(vgs, 0.7, 2));
  }
}
BENCHMARK(BM_FinFetEvaluate);

void BM_AigStrash(benchmark::State& state) {
  for (auto _ : state) {
    auto aig = cryo::epfl::make_multiplier(12);
    benchmark::DoNotOptimize(aig.num_ands());
  }
}
BENCHMARK(BM_AigStrash);

void BM_Simulation64Words(benchmark::State& state) {
  const auto aig = cryo::epfl::make_multiplier(12);
  cryo::logic::Simulation sim{aig, 64};
  cryo::util::Rng rng{1};
  sim.randomize_pis(rng);
  for (auto _ : state) {
    sim.run();
    benchmark::DoNotOptimize(sim.node_bits(aig.num_nodes() - 1));
  }
}
BENCHMARK(BM_Simulation64Words);

void BM_CutEnumerationK6(benchmark::State& state) {
  const auto aig = cryo::epfl::make_multiplier(12);
  for (auto _ : state) {
    cryo::logic::CutEnumerator cuts{aig, 6, 8};
    cuts.run();
    benchmark::DoNotOptimize(cuts.cuts(aig.num_nodes() - 1).size());
  }
}
BENCHMARK(BM_CutEnumerationK6);

// Priority-cut enumeration (area-flow ranking, the mapper's order):
// same workload as BM_CutEnumerationK6 for a direct comparison of the
// ranked path against the legacy size-first path.
void BM_CutEnumerationPriority(benchmark::State& state) {
  const auto aig = cryo::epfl::make_multiplier(12);
  for (auto _ : state) {
    cryo::logic::CutEnumerator cuts{aig, 6, 8,
                                    cryo::logic::CutOrder::kAreaFlow};
    cuts.run();
    benchmark::DoNotOptimize(cuts.cuts(aig.num_nodes() - 1).size());
  }
}
BENCHMARK(BM_CutEnumerationPriority);

// Semi-canonical NPN signature computation over a fixed random stream
// of 4-input functions — the per-cut cost the matcher pays before its
// single hash lookup.
void BM_NpnCanonicalize4(benchmark::State& state) {
  cryo::util::Rng rng{7};
  std::vector<std::uint64_t> tts(4096);
  for (auto& tt : tts) {
    tt = rng.next_u64() & cryo::logic::tt6_mask(4);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cryo::logic::npn_canonicalize(tts[i], 4).signature);
    i = (i + 1) % tts.size();
  }
}
BENCHMARK(BM_NpnCanonicalize4);

// Full matcher lookup (canonicalize + class-table hash + per-binding
// transform composition) against the characterized mini library.
void BM_MatcherLookup(benchmark::State& state) {
  const auto& matcher = mini_matcher();
  cryo::util::Rng rng{11};
  std::vector<std::uint64_t> tts(4096);
  for (auto& tt : tts) {
    tt = rng.next_u64() & cryo::logic::tt6_mask(4);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.matches(tts[i], 4).size());
    i = (i + 1) % tts.size();
  }
}
BENCHMARK(BM_MatcherLookup);

void BM_RewritePass(benchmark::State& state) {
  const auto aig = cryo::epfl::make_adder(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryo::opt::rewrite(aig).num_ands());
  }
}
BENCHMARK(BM_RewritePass);

void BM_SatCecAdder(benchmark::State& state) {
  const auto a = cryo::epfl::make_adder(12);
  const auto b = cryo::opt::compress2rs(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryo::sat::check_equivalence(a, b).equivalent());
  }
}
BENCHMARK(BM_SatCecAdder);

// --- thread-count scaling of the parallel drivers (Arg = workers) ---

void BM_ParallelForOverhead(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<double> out(4096);
  for (auto _ : state) {
    cryo::util::parallel_for(
        out.size(), [&](std::size_t i) { out[i] = 1.5 * double(i); },
        threads);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->UseRealTime();

// SPICE characterization of the mini catalog on a reduced grid: the
// workload behind the `>= 2x at 4 threads` acceptance criterion.
void BM_CharacterizeCells(benchmark::State& state) {
  cryo::cells::CharOptions options;
  options.slews = {4e-12, 16e-12, 64e-12};
  options.loads = {2e-16, 8e-16, 3.2e-15};
  options.include_sequential = false;
  options.threads = static_cast<int>(state.range(0));
  const auto catalog = cryo::cells::mini_catalog();
  for (auto _ : state) {
    const auto lib = cryo::cells::characterize(catalog, 10.0, options);
    benchmark::DoNotOptimize(lib.cells.size());
  }
}
BENCHMARK(BM_CharacterizeCells)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Per-benchmark synthesis+STA fleet over a small suite.
void BM_SynthesisFleet(benchmark::State& state) {
  static const auto lib = [] {
    cryo::cells::CharOptions options;
    options.slews = {4e-12, 16e-12, 64e-12};
    options.loads = {2e-16, 8e-16, 3.2e-15};
    return cryo::cells::characterize(cryo::cells::mini_catalog(), 10.0,
                                     options);
  }();
  static const cryo::map::CellMatcher matcher{lib};
  static const auto suite = [] {
    auto full = cryo::epfl::epfl_suite();
    full.resize(4);
    return full;
  }();
  cryo::core::ExperimentOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto rows =
        cryo::core::run_synthesis_comparison(suite, matcher, options);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_SynthesisFleet)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- deterministic counter probes (--counters-only) -------------------
//
// Fixed single-threaded workloads through the counted hot paths: cut
// enumeration (both orders), NPN canonicalization + technology mapping,
// and SAT search. Every counter they emit is exactly reproducible, so
// `scripts/check_regression.py --counters-from
// bench/baselines/kernels_counters.json` gates them bit-for-bit —
// the machine-checkable form of "the mapper tries fewer matches".
void run_counter_probes() {
  // Cut enumeration, legacy and ranked order, on a mid-size multiplier.
  const auto mult = cryo::epfl::make_multiplier(12);
  for (const auto order : {cryo::logic::CutOrder::kSizeFirst,
                           cryo::logic::CutOrder::kAreaFlow}) {
    cryo::logic::CutEnumerator cuts{mult, 6, 8, order};
    cuts.run();
  }

  // Technology mapping of the EPFL mini suite under every cost
  // priority: drives map.candidate_cuts / map.canon_lookups /
  // map.match_static_evals / map.matches_tried.
  for (const auto& bench : cryo::epfl::mini_suite()) {
    for (const auto priority :
         {cryo::opt::CostPriority::kBaselinePowerAware,
          cryo::opt::CostPriority::kPowerAreaDelay,
          cryo::opt::CostPriority::kPowerDelayArea}) {
      cryo::map::TechMapOptions options;
      options.priority = priority;
      const auto net = cryo::map::tech_map(bench.aig, mini_matcher(),
                                           options);
      if (net.gate_count() == 0) {
        std::abort();  // probe must exercise the hot path
      }
    }
  }

  // SAT: an UNSAT pigeonhole under a reduction-heavy config plus a CEC
  // proof, driving sat.conflicts / sat.restarts / sat.reduce_dbs.
  {
    cryo::sat::SolverConfig config;
    config.restart_base = 10;
    config.reduce_base = 50;
    config.reduce_inc = 25;
    cryo::sat::Solver solver{config};
    const int holes = 6;
    const int pigeons = 7;
    std::vector<std::vector<cryo::sat::Var>> vars(
        pigeons, std::vector<cryo::sat::Var>(holes));
    for (auto& row : vars) {
      for (auto& v : row) {
        v = solver.new_var();
      }
    }
    for (int p = 0; p < pigeons; ++p) {
      std::vector<cryo::sat::Lit> clause;
      for (int h = 0; h < holes; ++h) {
        clause.push_back(cryo::sat::mk_lit(vars[p][h]));
      }
      solver.add_clause(std::move(clause));
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          solver.add_clause(cryo::sat::mk_lit(vars[p1][h], true),
                            cryo::sat::mk_lit(vars[p2][h], true));
        }
      }
    }
    if (solver.solve() != cryo::sat::Status::kUnsat) {
      std::abort();
    }
  }
  {
    const auto a = cryo::epfl::make_adder(12);
    const auto b = cryo::opt::compress2rs(a);
    if (!cryo::sat::check_equivalence(a, b).equivalent()) {
      std::abort();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--counters-only") == 0) {
      run_counter_probes();
      cryo::bench::write_bench_report("kernels");
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
