#pragma once

#include <string>
#include <vector>

#include "spice/backend.hpp"

namespace cryo::spice {

/// The analysis a generated ngspice deck performs.
enum class NgspiceAnalysis { kOperatingPoint, kTransient };

/// A parsed ngspice ASCII rawfile: one named column per variable, all
/// columns the same length (`points`). Column 0 of a transient plot is
/// "time".
struct NgspiceRaw {
  std::vector<std::string> variables;
  std::vector<std::vector<double>> columns;  ///< columns[var][point]

  std::size_t points() const {
    return columns.empty() ? 0 : columns.front().size();
  }
  /// Column by variable name; throws std::out_of_range when absent.
  const std::vector<double>& column(const std::string& variable) const;
};

/// Parse the ASCII rawfile format `write` emits under
/// `set filetype=ascii` (Variables: / Values: sections, real flags).
/// Throws cryo::Error{kIo} on malformed input. Exposed as a free
/// function so the parser is unit-testable without an ngspice binary.
NgspiceRaw parse_ngspice_raw(const std::string& text);

/// Render `circuit` as an ngspice deck at `temperature_k`: nodes become
/// `n<id>`, sources PWL voltage sources sampled on the transient grid,
/// and every FinFET a behavioral (B) current source evaluating the
/// cryogenic EKV compact model with its per-temperature constants baked
/// in at deck time — ngspice supplies the solver, cryoeda supplies the
/// device physics. The `.control` block runs the analysis and writes an
/// ASCII rawfile to `rawfile_path`. Exposed for deck-golden tests.
std::string ngspice_deck(const Circuit& circuit, double temperature_k,
                         const TransientOptions& options,
                         NgspiceAnalysis analysis,
                         const std::string& rawfile_path);

/// External-engine backend: shells out to an `ngspice` binary on PATH
/// (popen, batch mode), then parses the ASCII rawfile back into the
/// common result types, interpolated onto the builtin engine's uniform
/// time grid. Availability (and the reported version) is probed once
/// per process via `ngspice --version`; when the binary is missing the
/// backend reports unavailable instead of failing, and tier-1 never
/// requires it.
class NgspiceBackend : public Backend {
public:
  std::string name() const override { return "ngspice"; }
  std::string version() const override;
  bool available() const override;
  std::string unavailable_reason() const override;

  DcResult dc(const Circuit& circuit, double temperature_k) const override;
  TransientResult transient(const Circuit& circuit, double temperature_k,
                            const TransientOptions& options,
                            const std::vector<NodeId>& probes) const override;
};

}  // namespace cryo::spice
