#include "sta/sta.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/obs.hpp"

namespace cryo::sta {

namespace obs = util::obs;

StaResult analyze(const map::Netlist& netlist, const StaOptions& options) {
  if (!(options.clock_period > 0.0)) {
    throw std::invalid_argument{
        "sta::analyze: clock_period must be positive"};
  }
  if (!(options.input_slew > 0.0)) {
    throw std::invalid_argument{"sta::analyze: input_slew must be positive"};
  }
  if (options.output_load < 0.0) {
    throw std::invalid_argument{
        "sta::analyze: output_load must be non-negative"};
  }
  const liberty::LookupMode mode = options.clamp_tables
                                       ? liberty::LookupMode::kClamp
                                       : liberty::LookupMode::kExtrapolate;
  const std::uint32_t nets = netlist.num_nets;
  StaResult result;
  result.arrival.assign(nets, 0.0);
  result.slew.assign(nets, options.input_slew);
  result.activity =
      netlist.simulate_activity(options.input_activity, options.sim_words,
                                options.seed);

  // Net loads: sum of the input-pin capacitances hanging on each net,
  // plus the fanout-based wire-load estimate.
  std::vector<double> load(nets, 0.0);
  std::vector<unsigned> fanouts(nets, 0);
  for (const auto& gate : netlist.gates) {
    const auto inputs = gate.cell->input_names();
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      const auto* pin = gate.cell->find_pin(inputs[i]);
      if (pin != nullptr) {
        load[gate.fanins[i]] += pin->capacitance;
      }
      ++fanouts[gate.fanins[i]];
    }
  }
  for (const std::uint32_t po : netlist.pos) {
    load[po] += options.output_load;
    ++fanouts[po];
  }
  if (options.wire_cap_base > 0.0 || options.wire_cap_per_fanout > 0.0) {
    for (std::uint32_t n = 0; n < nets; ++n) {
      if (fanouts[n] > 0) {
        load[n] += options.wire_cap_base +
                   options.wire_cap_per_fanout * fanouts[n];
      }
    }
  }

  const double vdd = netlist.library != nullptr ? netlist.library->voltage : 0.7;

  // Forward propagation (gates are topologically ordered).
  for (const auto& gate : netlist.gates) {
    const auto inputs = gate.cell->input_names();
    double out_arrival = 0.0;
    double out_slew = options.input_slew;
    double worst_fanin_slew = 0.0;
    bool any_arc = false;
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      worst_fanin_slew =
          std::max(worst_fanin_slew, result.slew[gate.fanins[i]]);
      const auto* arc = gate.cell->arc_from(inputs[i]);
      if (arc == nullptr) {
        continue;
      }
      any_arc = true;
      const double in_slew = result.slew[gate.fanins[i]];
      const double out_load = load[gate.output];
      const double delay =
          std::max(arc->cell_rise.lookup(in_slew, out_load, mode),
                   arc->cell_fall.lookup(in_slew, out_load, mode));
      const double tr =
          std::max(arc->rise_transition.lookup(in_slew, out_load, mode),
                   arc->fall_transition.lookup(in_slew, out_load, mode));
      out_arrival =
          std::max(out_arrival, result.arrival[gate.fanins[i]] + delay);
      out_slew = std::max(out_slew, tr);
    }
    if (!any_arc) {
      // No timing arc matched (e.g. a TIE-like cell): propagate the
      // worst fanin slew instead of silently resetting to the PI slew.
      out_slew = std::max(out_slew, worst_fanin_slew);
    }
    result.arrival[gate.output] = out_arrival;
    result.slew[gate.output] = out_slew;
  }

  // Arrival / slack roll-up: PO arrivals and their slack against the
  // analysis clock (circuit time, so the histograms are deterministic).
  static obs::Histogram& arrivals =
      obs::histogram("sta.po_arrival_s", obs::Unit::kSeconds);
  static obs::Histogram& slacks =
      obs::histogram("sta.po_slack_s", obs::Unit::kSeconds);
  for (const std::uint32_t po : netlist.pos) {
    result.critical_delay = std::max(result.critical_delay, result.arrival[po]);
    arrivals.record(result.arrival[po]);
    slacks.record(options.clock_period - result.arrival[po]);
  }
  obs::counter("sta.analyses").add();
  obs::histogram("sta.critical_delay_s", obs::Unit::kSeconds)
      .record(result.critical_delay);

  // ------------------------------ power ---------------------------------
  const double freq = 1.0 / options.clock_period;
  for (const auto& gate : netlist.gates) {
    result.power.leakage += gate.cell->leakage_power;
    // Internal power: the output toggles `activity` times per cycle; each
    // toggle consumes the arc's internal energy (mean of rise/fall) —
    // attributed to the worst-slew input arc, a common approximation.
    const auto inputs = gate.cell->input_names();
    double energy = 0.0;
    int narcs = 0;
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      const auto* parc = gate.cell->power_arc_from(inputs[i]);
      if (parc == nullptr) {
        continue;
      }
      const double in_slew = result.slew[gate.fanins[i]];
      const double out_load = load[gate.output];
      energy += 0.5 * (parc->rise_power.lookup(in_slew, out_load, mode) +
                       parc->fall_power.lookup(in_slew, out_load, mode));
      ++narcs;
    }
    if (narcs > 0) {
      energy /= narcs;
      result.power.internal +=
          energy * result.activity[gate.output] * freq;
    }
  }
  // Net switching power: 1/2 C V^2 per toggle.
  for (std::uint32_t n = 0; n < nets; ++n) {
    result.power.switching +=
        0.5 * load[n] * vdd * vdd * result.activity[n] * freq;
  }
  return result;
}

}  // namespace cryo::sta
